package staticgrid

import (
	"context"
	"errors"
	"testing"
	"time"

	"coterie/internal/nodeset"
	"coterie/internal/replica"
)

func fastOpts() Options {
	return Options{CallTimeout: 400 * time.Millisecond}
}

func newTestCluster(t *testing.T, n int, initial []byte) *Cluster {
	t.Helper()
	c, err := NewCluster(n, "item", initial, fastOpts(), replica.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestStaticWriteRead(t *testing.T) {
	c := newTestCluster(t, 9, []byte("init"))
	ver, err := c.Coordinator(0).Write(ctxT(t), []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 {
		t.Errorf("version = %d", ver)
	}
	v, rver, err := c.Coordinator(4).Read(ctxT(t))
	if err != nil || string(v) != "hello" || rver != 1 {
		t.Errorf("read %q@%d, %v", v, rver, err)
	}
}

func TestStaticTotalWriteOverwrites(t *testing.T) {
	c := newTestCluster(t, 9, nil)
	if _, err := c.Coordinator(0).Write(ctxT(t), []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Coordinator(5).Write(ctxT(t), []byte("b")); err != nil {
		t.Fatal(err)
	}
	v, ver, err := c.Coordinator(8).Read(ctxT(t))
	if err != nil || string(v) != "b" || ver != 2 {
		t.Errorf("read %q@%d, %v", v, ver, err)
	}
}

func TestStaticDifferentCoordinatorsDifferentQuorums(t *testing.T) {
	// The static protocol's selling point: load sharing. Distinct
	// coordinators draw distinct quorums (hint = node name).
	c := newTestCluster(t, 9, nil)
	c.Net.ResetStats()
	for id := nodeset.ID(0); id < 9; id++ {
		if _, err := c.Coordinator(id).Write(ctxT(t), []byte{byte(id)}); err != nil {
			t.Fatal(err)
		}
	}
	load := c.Net.Load()
	// Every node should have served some requests.
	for _, id := range c.Members.IDs() {
		if load[id] == 0 {
			t.Errorf("node %v served no requests: load sharing broken (%v)", id, load)
		}
	}
}

func TestStaticToleratesNonQuorumFailures(t *testing.T) {
	c := newTestCluster(t, 9, nil)
	c.Crash(4)
	c.Crash(8)
	if _, err := c.Coordinator(0).Write(ctxT(t), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	v, _, err := c.Coordinator(1).Read(ctxT(t))
	if err != nil || string(v) != "ok" {
		t.Errorf("read %q, %v", v, err)
	}
}

func TestStaticUnavailableAfterColumnLoss(t *testing.T) {
	// The contrast with the dynamic protocol: a dead column is fatal and
	// stays fatal regardless of how many other nodes are up.
	c := newTestCluster(t, 9, nil)
	for _, id := range []nodeset.ID{0, 3, 6} {
		c.Crash(id)
	}
	if _, err := c.Coordinator(1).Write(ctxT(t), []byte("x")); !errors.Is(err, ErrUnavailable) {
		t.Errorf("write err = %v", err)
	}
	if _, _, err := c.Coordinator(1).Read(ctxT(t)); !errors.Is(err, ErrUnavailable) {
		t.Errorf("read err = %v", err)
	}
	// Repairing a column member restores availability (static recovery).
	c.Restart(3)
	if _, err := c.Coordinator(1).Write(ctxT(t), []byte("back")); err != nil {
		t.Errorf("write after repair: %v", err)
	}
}

func TestStaticN3NeedsAllNodes(t *testing.T) {
	// Figure 2: with the strict rule, the 3-node grid needs all three
	// nodes for a write.
	c := newTestCluster(t, 3, nil)
	if _, err := c.Coordinator(0).Write(ctxT(t), []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.Crash(2)
	if _, err := c.Coordinator(0).Write(ctxT(t), []byte("w")); !errors.Is(err, ErrUnavailable) {
		t.Errorf("write err = %v", err)
	}
}

func TestStaticReadRepairlessStaleness(t *testing.T) {
	// A node missed a write (different quorum); a later read that includes
	// it still returns the latest version via max-version selection.
	c := newTestCluster(t, 4, nil)
	if _, err := c.Coordinator(0).Write(ctxT(t), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Find a node that missed the write.
	var missed nodeset.ID = 255
	for _, id := range c.Members.IDs() {
		if st := c.Replica(id).State(); st.Version == 0 {
			missed = id
			break
		}
	}
	if missed == 255 {
		t.Skip("write reached all nodes")
	}
	v, ver, err := c.Coordinator(missed).Read(ctxT(t))
	if err != nil || string(v) != "v1" || ver != 1 {
		t.Errorf("read from node that missed the write: %q@%d, %v", v, ver, err)
	}
}

func TestStaticClusterErrors(t *testing.T) {
	if _, err := NewCluster(0, "x", nil, Options{}, replica.Config{}); err == nil {
		t.Error("empty cluster accepted")
	}
	c := newTestCluster(t, 4, nil)
	if c.Replica(99) != nil {
		t.Error("unknown replica non-nil")
	}
}
