package coterie

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"coterie/internal/nodeset"
)

func TestDefineGrid(t *testing.T) {
	cases := []struct {
		n       int
		m, cols int
		b       int
	}{
		{1, 1, 1, 0},
		{2, 1, 2, 0},
		{3, 2, 2, 1}, // the paper's Figure 2 grid
		{4, 2, 2, 0},
		{5, 2, 3, 1},
		{6, 2, 3, 0},
		{7, 3, 3, 2},
		{9, 3, 3, 0},
		{12, 3, 4, 0},
		{14, 4, 4, 2}, // the paper's Figure 1 grid
		{15, 4, 4, 1},
		{16, 4, 4, 0},
		{20, 4, 5, 0},
		{24, 5, 5, 1},
		{30, 5, 6, 0},
		{100, 10, 10, 0},
	}
	for _, c := range cases {
		g := DefineGrid(c.n)
		if g.M != c.m || g.N != c.cols || g.B != c.b {
			t.Errorf("DefineGrid(%d) = %v, want %dx%d(-%d)", c.n, g, c.m, c.cols, c.b)
		}
	}
}

func TestDefineGridInvariants(t *testing.T) {
	for n := 1; n <= 2000; n++ {
		g := DefineGrid(n)
		if g.Positions() != n {
			t.Fatalf("N=%d: positions %d != N", n, g.Positions())
		}
		if g.B >= g.N {
			t.Fatalf("N=%d: b=%d >= columns=%d", n, g.B, g.N)
		}
		if g.M > g.N || g.N-g.M > 1 {
			t.Fatalf("N=%d: dims %dx%d not near-square with m<=n", n, g.M, g.N)
		}
		if g.M*g.N < n {
			t.Fatalf("N=%d: grid %v too small", n, g)
		}
		// Write quorum size m+n should be near the 2*sqrt(N) optimum.
		if float64(g.M+g.N) > 2*math.Sqrt(float64(n))+2 {
			t.Fatalf("N=%d: m+n=%d far from 2sqrt(N)", n, g.M+g.N)
		}
	}
}

func TestDefineGridNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		if g := DefineGrid(n); g != (GridShape{}) {
			t.Errorf("DefineGrid(%d) = %v, want zero", n, g)
		}
	}
}

func TestColumnHeight(t *testing.T) {
	g := DefineGrid(14) // 4x4 with 2 unoccupied in columns 3,4 of the bottom row
	want := []int{4, 4, 3, 3}
	for j := 1; j <= 4; j++ {
		if h := g.ColumnHeight(j); h != want[j-1] {
			t.Errorf("ColumnHeight(%d) = %d, want %d", j, h, want[j-1])
		}
	}
	if g.ColumnHeight(0) != 0 || g.ColumnHeight(5) != 0 {
		t.Error("ColumnHeight out of range != 0")
	}
}

func TestGridShapeString(t *testing.T) {
	if s := DefineGrid(9).String(); s != "3x3" {
		t.Errorf("String = %q", s)
	}
	if s := DefineGrid(3).String(); s != "2x2(-1)" {
		t.Errorf("String = %q", s)
	}
}

// figure1 is the paper's 14-node universe, named 1..14 as in Figure 1.
func figure1() nodeset.Set { return nodeset.Range(1, 15) }

func TestGridPosition(t *testing.T) {
	V := figure1()
	g := Grid{}
	cases := []struct {
		id       nodeset.ID
		row, col int
	}{
		{1, 1, 1}, {2, 1, 2}, {4, 1, 4}, {5, 2, 1}, {11, 3, 3}, {13, 4, 1}, {14, 4, 2},
	}
	for _, c := range cases {
		row, col, ok := g.Position(V, c.id)
		if !ok || row != c.row || col != c.col {
			t.Errorf("Position(%v) = (%d,%d,%v), want (%d,%d)", c.id, row, col, ok, c.row, c.col)
		}
	}
	if _, _, ok := g.Position(V, 99); ok {
		t.Error("Position of non-member ok")
	}
}

// TestPaperFigure1WriteQuorum reproduces the paper's worked example: over
// the 14-node grid, {1, 6, 3, 7, 11, 4} is a write quorum because {1,6,3,4}
// covers every column and {3,7,11} covers all physical nodes of column 3.
func TestPaperFigure1WriteQuorum(t *testing.T) {
	V := figure1()
	g := Grid{}
	q := nodeset.New(1, 6, 3, 7, 11, 4)
	if !g.IsWriteQuorum(V, q) {
		t.Fatalf("paper example %v not a write quorum", q)
	}
	if !g.IsReadQuorum(V, q) {
		t.Fatalf("paper example %v not a read quorum", q)
	}
	// Without node 11 the column is no longer fully covered.
	q.Remove(11)
	if g.IsWriteQuorum(V, q) {
		t.Fatalf("%v should not be a write quorum", q)
	}
	if !g.IsReadQuorum(V, q) {
		t.Fatalf("%v should still be a read quorum", q)
	}
	// Dropping the only column-2 representative kills the read quorum too.
	q.Remove(6)
	if g.IsReadQuorum(V, q) {
		t.Fatalf("%v should not be a read quorum", q)
	}
}

// TestStrictGridFigure2 checks the paper's Figure 2 claim: in the N = 3
// grid, under the pre-optimization (strict) rule all three nodes are needed
// to collect a write quorum.
func TestStrictGridFigure2(t *testing.T) {
	V := nodeset.Range(1, 4)
	strict := Grid{Strict: true}
	for mask := 0; mask < 8; mask++ {
		var s nodeset.Set
		for i := 0; i < 3; i++ {
			if mask&(1<<i) != 0 {
				s.Add(nodeset.ID(i + 1))
			}
		}
		got := strict.IsWriteQuorum(V, s)
		want := s.Len() == 3
		if got != want {
			t.Errorf("strict IsWriteQuorum(%v) = %v, want %v", s, got, want)
		}
	}
}

// TestOptimizedGridN3 checks the Neuman optimization on the N = 3 grid:
// node 2 alone fills column 2, so {1,2} and {2,3} are write quorums while
// {1,3} is not.
func TestOptimizedGridN3(t *testing.T) {
	V := nodeset.Range(1, 4)
	g := Grid{}
	if !g.IsWriteQuorum(V, nodeset.New(1, 2)) {
		t.Error("{1,2} should be a write quorum with the partial-column optimization")
	}
	if !g.IsWriteQuorum(V, nodeset.New(2, 3)) {
		t.Error("{2,3} should be a write quorum")
	}
	if g.IsWriteQuorum(V, nodeset.New(1, 3)) {
		t.Error("{1,3} lacks a column-2 representative")
	}
	if g.IsWriteQuorum(V, nodeset.New(2)) {
		t.Error("{2} alone covers no column-1 representative")
	}
}

func TestGridEmptyUniverse(t *testing.T) {
	g := Grid{}
	var V nodeset.Set
	if g.IsReadQuorum(V, nodeset.New(1)) || g.IsWriteQuorum(V, nodeset.New(1)) {
		t.Error("quorum over empty universe")
	}
	if _, ok := g.ReadQuorum(V, nodeset.New(1), 0); ok {
		t.Error("ReadQuorum over empty universe ok")
	}
	if _, ok := g.WriteQuorum(V, nodeset.New(1), 0); ok {
		t.Error("WriteQuorum over empty universe ok")
	}
}

func TestGridMembersOutsideVIgnored(t *testing.T) {
	V := nodeset.Range(0, 9)
	g := Grid{}
	// Enough foreign nodes to look like a quorum by count, but only one is in V.
	s := nodeset.New(0, 100, 101, 102, 103, 104)
	if g.IsReadQuorum(V, s) {
		t.Error("foreign nodes counted toward read quorum")
	}
}

func TestGridQuorumSizes(t *testing.T) {
	// For a perfect square N the read quorum has sqrt(N) members and the
	// write quorum 2*sqrt(N)-1 (paper, Section 1).
	for _, n := range []int{4, 9, 16, 25, 36, 49} {
		V := nodeset.Range(0, nodeset.ID(n))
		g := Grid{}
		root := int(math.Sqrt(float64(n)))
		rq, ok := g.ReadQuorum(V, V, 0)
		if !ok || rq.Len() != root {
			t.Errorf("N=%d: read quorum %v (len %d), want %d", n, rq, rq.Len(), root)
		}
		wq, ok := g.WriteQuorum(V, V, 0)
		if !ok || wq.Len() != 2*root-1 {
			t.Errorf("N=%d: write quorum len %d, want %d", n, wq.Len(), 2*root-1)
		}
	}
}

func TestGridWriteQuorumUnderFailures(t *testing.T) {
	V := nodeset.Range(0, 9) // 3x3
	g := Grid{}
	// Fail one node: a write quorum must avoid it.
	for _, down := range V.IDs() {
		avail := V.Clone()
		avail.Remove(down)
		q, ok := g.WriteQuorum(V, avail, 3)
		if !ok {
			t.Fatalf("no write quorum with only %v down", down)
		}
		if q.Contains(down) {
			t.Fatalf("write quorum %v contains down node %v", q, down)
		}
		if !g.IsWriteQuorum(V, q) {
			t.Fatalf("constructed quorum %v invalid", q)
		}
	}
	// Fail a full column (0,3,6): no write quorum exists — and no read quorum.
	avail := V.Diff(nodeset.New(0, 3, 6))
	if _, ok := g.WriteQuorum(V, avail, 0); ok {
		t.Error("write quorum despite dead column")
	}
	if _, ok := g.ReadQuorum(V, avail, 0); ok {
		t.Error("read quorum despite dead column")
	}
}

func TestGridHintSpreadsLoad(t *testing.T) {
	V := nodeset.Range(0, 9)
	g := Grid{}
	seen := map[string]bool{}
	for hint := 0; hint < 9; hint++ {
		q, ok := g.WriteQuorum(V, V, hint)
		if !ok {
			t.Fatal("no quorum")
		}
		seen[q.String()] = true
	}
	if len(seen) < 3 {
		t.Errorf("only %d distinct write quorums across hints, want >= 3", len(seen))
	}
}

func TestGridIntersectionProperty(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 9, 12, 14} {
		V := nodeset.Range(0, nodeset.ID(n))
		for _, g := range []Rule{Grid{}, Grid{Strict: true}} {
			if err := CheckIntersection(g, V); err != nil {
				t.Errorf("N=%d: %v", n, err)
			}
		}
	}
}

func TestGridConstructionMatchesPredicate(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(20)
		V := nodeset.Range(0, nodeset.ID(n))
		var avail nodeset.Set
		for _, id := range V.IDs() {
			if r.Intn(100) < 70 {
				avail.Add(id)
			}
		}
		if err := CheckConstruction(Grid{}, V, avail, r.Int()); err != nil {
			t.Fatal(err)
		}
		if err := CheckMonotone(Grid{}, V, avail); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: a strict write quorum is always an optimized write quorum
// (the optimization only enlarges the set of quorums).
func TestQuickStrictImpliesOptimized(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(16)
		V := nodeset.Range(0, nodeset.ID(n))
		var s nodeset.Set
		for _, id := range V.IDs() {
			if r.Intn(2) == 0 {
				s.Add(id)
			}
		}
		strict := Grid{Strict: true}
		opt := Grid{}
		if strict.IsWriteQuorum(V, s) && !opt.IsWriteQuorum(V, s) {
			return false
		}
		// A write quorum is always a read quorum in the grid protocol.
		if opt.IsWriteQuorum(V, s) && !opt.IsReadQuorum(V, s) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quorums constructed over sparse universes (non-contiguous IDs)
// behave identically to dense ones — the rule depends only on order.
func TestQuickOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		dense := nodeset.Range(0, nodeset.ID(n))
		// Sparse universe with the same cardinality.
		var sparse nodeset.Set
		next := 0
		for i := 0; i < n; i++ {
			next += 1 + r.Intn(10)
			sparse.Add(nodeset.ID(next))
		}
		sparseIDs := sparse.IDs()
		// Random subset, mapped across both universes by position.
		var sd, ss nodeset.Set
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				sd.Add(nodeset.ID(i))
				ss.Add(sparseIDs[i])
			}
		}
		g := Grid{}
		return g.IsWriteQuorum(dense, sd) == g.IsWriteQuorum(sparse, ss) &&
			g.IsReadQuorum(dense, sd) == g.IsReadQuorum(sparse, ss)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridRender(t *testing.T) {
	out := Grid{}.Render(figure1())
	if !strings.Contains(out, "4x4(-2)") {
		t.Errorf("Render missing shape: %q", out)
	}
	if !strings.Contains(out, "--") {
		t.Errorf("Render missing unoccupied marker: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Errorf("Render produced %d lines, want 5", len(lines))
	}
}
