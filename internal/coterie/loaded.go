package coterie

import "coterie/internal/nodeset"

// Load-aware quorum selection. The paper's load-sharing argument (Section
// 5) is that distinct coordinators may pick distinct quorums; the hint
// rotation spreads picks blindly, which is optimal only when endpoints are
// interchangeable. When a live load signal exists (see core.LoadTracker),
// a layout can instead pick the least-loaded quorum among its candidates:
// per-column argmin for grids, the k least-loaded members for majority
// voting. "Read-Write Quorum Systems Made Practical" (Whittaker et al.)
// shows this dominates random selection under skew.
//
// Contract: a loaded quorum is always a valid quorum of the same layout —
// ReadQuorumLoaded's result satisfies IsReadQuorum, WriteQuorumLoaded's
// satisfies IsWriteQuorum (enforced by the property tests in
// loaded_test.go). Load only changes *which* valid quorum is picked. Ties
// fall back to the hint rotation, so an all-equal load signal degrades to
// the existing hint behavior rather than pinning one quorum.

// LoadFunc reports a node's current load estimate. Higher means more
// loaded; the scale is caller-defined (the core layer feeds EWMA
// request rates). It is called on the quorum-selection path and must be
// cheap and allocation-free.
type LoadFunc func(nodeset.ID) float64

// loadedRule is implemented by compiled structures that support
// load-aware selection. Structures without it fall back to the hint path.
type loadedRule interface {
	readQuorumLoaded(avail nodeset.Set, load LoadFunc, hint int) (nodeset.Set, bool)
	writeQuorumLoaded(avail nodeset.Set, load LoadFunc, hint int) (nodeset.Set, bool)
}

// ReadQuorumLoaded returns a read quorum drawn from avail ∩ V minimizing
// the supplied load signal, falling back to ReadQuorum(avail, hint) when
// load is nil or the compiled structure has no load-aware form
// (hierarchical, wheel, uncompiled rules).
func (l *Layout) ReadQuorumLoaded(avail nodeset.Set, load LoadFunc, hint int) (nodeset.Set, bool) {
	if load != nil {
		if lr, ok := l.impl.(loadedRule); ok {
			return lr.readQuorumLoaded(avail, load, hint)
		}
	}
	return l.impl.readQuorum(avail, hint)
}

// WriteQuorumLoaded is ReadQuorumLoaded's analogue for write quorums.
func (l *Layout) WriteQuorumLoaded(avail nodeset.Set, load LoadFunc, hint int) (nodeset.Set, bool) {
	if load != nil {
		if lr, ok := l.impl.(loadedRule); ok {
			return lr.writeQuorumLoaded(avail, load, hint)
		}
	}
	return l.impl.writeQuorum(avail, hint)
}

// --- grid ------------------------------------------------------------------

// readQuorumLoaded picks, per column, the available member with the least
// load. Ties break toward the member the hint rotation would have picked
// first, so uniform load reproduces the hint distribution.
func (c *compiledGrid) readQuorumLoaded(avail nodeset.Set, load LoadFunc, hint int) (nodeset.Set, bool) {
	if c.empty {
		return nodeset.Set{}, false
	}
	var q nodeset.Set
	for j, col := range c.cols {
		cnt := avail.IntersectionLen(col)
		if cnt == 0 {
			return nodeset.Set{}, false
		}
		start := positiveMod(hint+j+1, cnt)
		var best nodeset.ID
		bestLoad, bestD, found, ci := 0.0, 0, false, 0
		for _, id := range c.ids[j] {
			if !avail.Contains(id) {
				continue
			}
			d := ci - start
			if d < 0 {
				d += cnt
			}
			ci++
			w := load(id)
			if !found || w < bestLoad || (w == bestLoad && d < bestD) {
				found, best, bestLoad, bestD = true, id, w, d
			}
		}
		q.Add(best)
	}
	return q, true
}

// writeQuorumLoaded unions the loaded cover with the fully-available
// column whose MEAN member load is least (ties toward the hint rotation's
// scan order). Mean, not sum: a ratio'd grid has unequal column sizes, and
// comparing sums would pin every write onto the smallest column even on an
// idle system — the opposite of load sharing. Mean compares hotness alone,
// so an all-equal signal ties every column and the hint rotation decides.
func (c *compiledGrid) writeQuorumLoaded(avail nodeset.Set, load LoadFunc, hint int) (nodeset.Set, bool) {
	cover, ok := c.readQuorumLoaded(avail, load, hint)
	if !ok {
		return nodeset.Set{}, false
	}
	n := len(c.cols)
	bestJ, bestMean := -1, 0.0
	for dj := 0; dj < n; dj++ {
		j := positiveMod(hint+dj, n)
		if c.full[j] > 0 && avail.ContainsAll(c.cols[j]) {
			sum := 0.0
			for _, id := range c.ids[j] {
				sum += load(id)
			}
			mean := sum / float64(len(c.ids[j]))
			if bestJ < 0 || mean < bestMean {
				bestJ, bestMean = j, mean
			}
		}
	}
	if bestJ < 0 {
		return nodeset.Set{}, false
	}
	return cover.Union(c.cols[bestJ]), true
}

// --- majority / ROWA -------------------------------------------------------

// pickLoaded selects the size least-loaded members of avail ∩ V by
// repeated argmin (O(n·size); n is small — quorum systems shrink, not
// grow). Ties break toward the rotated position pick would have chosen.
func (c *compiledMajority) pickLoaded(avail nodeset.Set, load LoadFunc, size, hint int) (nodeset.Set, bool) {
	cnt := c.v.IntersectionLen(avail)
	if size <= 0 || cnt < size {
		return nodeset.Set{}, false
	}
	start := positiveMod(hint, cnt)
	var q nodeset.Set
	for picked := 0; picked < size; picked++ {
		var best nodeset.ID
		bestLoad, bestD, found, ci := 0.0, 0, false, 0
		for _, id := range c.ids {
			if !avail.Contains(id) {
				continue
			}
			d := ci - start
			if d < 0 {
				d += cnt
			}
			ci++
			if q.Contains(id) {
				continue
			}
			w := load(id)
			if !found || w < bestLoad || (w == bestLoad && d < bestD) {
				found, best, bestLoad, bestD = true, id, w, d
			}
		}
		q.Add(best)
	}
	return q, true
}

func (c *compiledMajority) readQuorumLoaded(avail nodeset.Set, load LoadFunc, hint int) (nodeset.Set, bool) {
	return c.pickLoaded(avail, load, c.read, hint)
}

func (c *compiledMajority) writeQuorumLoaded(avail nodeset.Set, load LoadFunc, hint int) (nodeset.Set, bool) {
	return c.pickLoaded(avail, load, c.write, hint)
}

func (c *compiledROWA) readQuorumLoaded(avail nodeset.Set, load LoadFunc, hint int) (nodeset.Set, bool) {
	return c.one.pickLoaded(avail, load, 1, hint)
}

func (c *compiledROWA) writeQuorumLoaded(avail nodeset.Set, load LoadFunc, hint int) (nodeset.Set, bool) {
	// ROWA writes have exactly one candidate quorum (all of V); load
	// cannot change the pick.
	return c.writeQuorum(avail, hint)
}
