package coterie

import (
	"testing"

	"coterie/internal/nodeset"
)

// TestLayoutQuorumChecksDoNotAllocate is the ISSUE's zero-allocation gate:
// once a Layout is compiled, IsReadQuorum and IsWriteQuorum must run
// without heap allocations for every specialized rule. The simulator and
// coordinator call these on every event/round; an allocation here
// multiplies into millions per run.
func TestLayoutQuorumChecksDoNotAllocate(t *testing.T) {
	V := nodeset.Range(0, 25)
	// A read-but-not-write quorum drives both predicates through their
	// longest paths (every column inspected, no early exit).
	partial := nodeset.Range(0, 25)
	partial.Remove(3)
	partial.Remove(8)
	full := nodeset.Range(0, 25)
	var sink bool

	for _, rule := range []Rule{Grid{}, Grid{Strict: true}, Grid{Ratio: 2}, Hierarchical{}, Wheel{}, Majority{}, ROWA{}} {
		layout := Compile(rule, V)
		for _, tc := range []struct {
			name string
			fn   func()
		}{
			{"IsReadQuorum/partial", func() { sink = layout.IsReadQuorum(partial) }},
			{"IsReadQuorum/full", func() { sink = layout.IsReadQuorum(full) }},
			{"IsWriteQuorum/partial", func() { sink = layout.IsWriteQuorum(partial) }},
			{"IsWriteQuorum/full", func() { sink = layout.IsWriteQuorum(full) }},
		} {
			if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
				t.Errorf("%s: %s allocates %.1f objects per call, want 0", rule.Name(), tc.name, allocs)
			}
		}
	}
	_ = sink
}

// BenchmarkLayoutIsWriteQuorum measures the compiled write-quorum check
// against the uncompiled rule on the same inputs, N=25.
func BenchmarkLayoutIsWriteQuorum(b *testing.B) {
	V := nodeset.Range(0, 25)
	S := nodeset.Range(0, 25)
	S.Remove(7)
	for _, rule := range []Rule{Grid{}, Hierarchical{}, Majority{}} {
		layout := Compile(rule, V)
		b.Run("compiled/"+rule.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = layout.IsWriteQuorum(S)
			}
		})
		b.Run("naive/"+rule.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = rule.IsWriteQuorum(V, S)
			}
		})
	}
}

// BenchmarkCompile measures one-off layout compilation — the cost paid per
// epoch change, amortized across every check until the next change.
func BenchmarkCompile(b *testing.B) {
	V := nodeset.Range(0, 25)
	for _, rule := range []Rule{Grid{}, Hierarchical{}, Wheel{}} {
		b.Run(rule.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = Compile(rule, V)
			}
		})
	}
}
