package coterie

import (
	"math"
	"testing"

	"coterie/internal/nodeset"
)

func optInput(t *testing.T, rule Rule, n int) OptimizeInput {
	t.Helper()
	v := seqSet(n)
	lay := Compile(rule, v)
	in := OptimizeInput{
		Reads:    lay.EnumerateReadQuorums(0),
		Writes:   lay.EnumerateWriteQuorums(0),
		Members:  v.IDs(),
		ReadFrac: 0.5,
	}
	if len(in.Reads) == 0 || len(in.Writes) == 0 {
		t.Fatalf("%s n=%d: no candidates", rule.Name(), n)
	}
	return in
}

func checkSimplex(t *testing.T, name string, w []float64) {
	t.Helper()
	var sum float64
	for _, x := range w {
		if x < -1e-12 {
			t.Fatalf("%s: negative weight %v", name, x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("%s: weights sum to %v, want 1", name, sum)
	}
}

// TestOptimizeHomogeneousGrid: with equal capacities on a symmetric 3x3
// grid the solution must balance — peak utilization close to the uniform
// optimum, and no node starved or overloaded by more than a small factor.
func TestOptimizeHomogeneousGrid(t *testing.T) {
	in := optInput(t, Grid{}, 9)
	d, err := Optimize(in)
	if err != nil {
		t.Fatal(err)
	}
	checkSimplex(t, "reads", d.ReadWeights)
	checkSimplex(t, "writes", d.WriteWeights)
	// 3x3 grid, 50/50 mix: a read touches 3 nodes, a write 5. Uniform
	// spreading gives per-node utilization (0.5·3 + 0.5·5)/9 = 4/9.
	want := 4.0 / 9.0
	if d.PeakUtil > want*1.10 {
		t.Errorf("peak utilization %v, want <= %v (within 10%% of balanced optimum)", d.PeakUtil, want*1.10)
	}
	if d.Capacity < 1/(want*1.10) {
		t.Errorf("predicted capacity %v too low", d.Capacity)
	}
}

// TestOptimizeHeterogeneousAvoidsWeakNode: a node with 1/10th capacity
// must end up with utilization comparable to the rest — i.e. the solver
// must route mass away from it.
func TestOptimizeHeterogeneousAvoidsWeakNode(t *testing.T) {
	in := optInput(t, Grid{}, 9)
	weak := nodeset.ID(4) // center of the 3x3 grid
	in.Capacity = func(id nodeset.ID) float64 {
		if id == weak {
			return 0.1
		}
		return 1
	}
	d, err := Optimize(in)
	if err != nil {
		t.Fatal(err)
	}
	// Expected touch mass on the weak node must drop well below uniform
	// (uniform read mass would put 1/3 of reads through its column slot).
	// utilization × capacity recovers the expected touch mass per node.
	var weakMass, maxMass float64
	for i, id := range in.Members {
		if id == weak {
			weakMass = d.Utilization[i] * 0.1
		} else if m := d.Utilization[i]; m > maxMass {
			maxMass = m
		}
	}
	if weakMass > maxMass*0.5 {
		t.Errorf("weak node touch mass %v vs strongest peer %v: solver failed to shift load", weakMass, maxMass)
	}
	// And the solution must still beat the uniform distribution's peak.
	uniform := uniformPeak(in)
	if d.PeakUtil >= uniform {
		t.Errorf("optimized peak %v not better than uniform peak %v", d.PeakUtil, uniform)
	}
}

// uniformPeak computes max_i u_i for the uniform distribution over the
// same candidates — the baseline the solver must beat under heterogeneity.
func uniformPeak(in OptimizeInput) float64 {
	fr := in.ReadFrac
	if fr < 0 {
		fr = 0.5
	}
	util := make(map[nodeset.ID]float64, len(in.Members))
	for _, q := range in.Reads {
		for _, id := range q.IDs() {
			util[id] += fr / float64(len(in.Reads))
		}
	}
	for _, q := range in.Writes {
		for _, id := range q.IDs() {
			util[id] += (1 - fr) / float64(len(in.Writes))
		}
	}
	peak := 0.0
	for _, id := range in.Members {
		c := 1.0
		if in.Capacity != nil {
			c = in.Capacity(id)
		}
		if u := util[id] / c; u > peak {
			peak = u
		}
	}
	return peak
}

// TestOptimizeReadSizeBias: under Majority{ReadQuorumSize:2} on 7 nodes the
// read candidates all have size 2 — bias is a no-op. Under a ratio grid
// (tall) vs the sampled hierarchical fallback candidates sizes vary; use
// majority with mixed-size read candidates built by hand to check the bias
// skews mass toward small quorums.
func TestOptimizeReadSizeBias(t *testing.T) {
	v := seqSet(6)
	// Hand-built candidate mix: two small reads {0,1}, {2,3} and one large
	// read {0,1,2,3,4,5}; writes = majorities.
	small1 := nodeset.New(0, 1)
	small2 := nodeset.New(2, 3)
	large := seqSet(6)
	lay := Compile(Majority{}, v)
	in := OptimizeInput{
		Reads:        []nodeset.Set{large, small1, small2},
		Writes:       lay.EnumerateWriteQuorums(0),
		Members:      v.IDs(),
		ReadFrac:     0.95,
		ReadSizeBias: 0.05,
	}
	d, err := Optimize(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.ReadWeights[0] > 0.2 {
		t.Errorf("large read quorum weight %v, want < 0.2 under size bias", d.ReadWeights[0])
	}
	if d.ReadWeights[1]+d.ReadWeights[2] < 0.8 {
		t.Errorf("small read quorums got %v total, want >= 0.8", d.ReadWeights[1]+d.ReadWeights[2])
	}
}

// TestOptimizeLoadSteering: live load on one endpoint shifts mass away
// from it even with homogeneous capacity.
func TestOptimizeLoadSteering(t *testing.T) {
	in := optInput(t, Majority{}, 5)
	hot := nodeset.ID(2)
	in.Load = func(id nodeset.ID) float64 {
		if id == hot {
			return 900
		}
		return 100
	}
	d, err := Optimize(in)
	if err != nil {
		t.Fatal(err)
	}
	// Mass through the hot node must be below the average of the others.
	touch := make(map[nodeset.ID]float64)
	for k, q := range in.Reads {
		for _, id := range q.IDs() {
			touch[id] += 0.5 * d.ReadWeights[k]
		}
	}
	for k, q := range in.Writes {
		for _, id := range q.IDs() {
			touch[id] += 0.5 * d.WriteWeights[k]
		}
	}
	var others float64
	for id, m := range touch {
		if id != hot {
			others += m
		}
	}
	others /= 4
	if touch[hot] >= others {
		t.Errorf("hot node touch mass %v >= peer average %v: load steering failed", touch[hot], others)
	}
}

// TestOptimizeDeterministic is the CI convergence gate: fixed inputs (the
// "seed" fixes the pseudo-random capacity vector) must converge to the
// identical distribution on every run, and to a peak utilization within
// 10% of the uniform lower bound certificate.
func TestOptimizeDeterministic(t *testing.T) {
	in := optInput(t, Grid{}, 12)
	seed := uint64(0x9e3779b97f4a7c15) // fixed seed for the capacity draw
	caps := make(map[nodeset.ID]float64, 12)
	x := seed
	for _, id := range in.Members {
		x = enumMix64(x)
		caps[id] = 0.5 + float64(x%1000)/1000.0 // capacities in [0.5, 1.5)
	}
	in.Capacity = func(id nodeset.ID) float64 { return caps[id] }
	first, err := Optimize(in)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		d, err := Optimize(in)
		if err != nil {
			t.Fatal(err)
		}
		for k := range first.ReadWeights {
			if d.ReadWeights[k] != first.ReadWeights[k] {
				t.Fatalf("run %d: read weight %d differs: %v vs %v", run, k, d.ReadWeights[k], first.ReadWeights[k])
			}
		}
		for k := range first.WriteWeights {
			if d.WriteWeights[k] != first.WriteWeights[k] {
				t.Fatalf("run %d: write weight %d differs: %v vs %v", run, k, d.WriteWeights[k], first.WriteWeights[k])
			}
		}
		if d.PeakUtil != first.PeakUtil {
			t.Fatalf("run %d: peak differs: %v vs %v", run, d.PeakUtil, first.PeakUtil)
		}
	}
	// Convergence quality: beat (or match within 2%) the uniform baseline.
	if u := uniformPeak(in); first.PeakUtil > u*1.02 {
		t.Errorf("converged peak %v worse than uniform baseline %v", first.PeakUtil, u)
	}
}

// TestOptimizePureWriteMix: ReadFrac 0 is a real workload (all writes),
// not the unset sentinel — the strategy engine legitimately measures 0.0
// once enough write-only traffic is observed. The solve must model the
// full write pressure: on a 3x3 grid a write touches 5 nodes, so the
// balanced all-write peak is 5/9 — well above the 4/9 a 50/50 solve
// would report if 0 were silently replaced by 0.5.
func TestOptimizePureWriteMix(t *testing.T) {
	pure := optInput(t, Grid{}, 9)
	pure.ReadFrac = 0
	dp, err := Optimize(pure)
	if err != nil {
		t.Fatal(err)
	}
	unset := optInput(t, Grid{}, 9)
	unset.ReadFrac = -1
	du, err := Optimize(unset)
	if err != nil {
		t.Fatal(err)
	}
	if dp.PeakUtil < 5.0/9.0*0.98 {
		t.Errorf("pure-write peak %v below the 5/9 all-write lower bound: write pressure under-modeled", dp.PeakUtil)
	}
	if du.PeakUtil > 4.0/9.0*1.10 {
		t.Errorf("unset (negative) ReadFrac peak %v, want ~4/9 (50/50 default)", du.PeakUtil)
	}
	if dp.PeakUtil <= du.PeakUtil {
		t.Errorf("pure-write peak %v not above 50/50 peak %v", dp.PeakUtil, du.PeakUtil)
	}
}

// TestOptimizeErrors covers the degenerate-input contract.
func TestOptimizeErrors(t *testing.T) {
	v := seqSet(3)
	if _, err := Optimize(OptimizeInput{Writes: []nodeset.Set{v}, Members: v.IDs()}); err == nil {
		t.Error("want error for empty reads")
	}
	if _, err := Optimize(OptimizeInput{Reads: []nodeset.Set{v}, Members: v.IDs()}); err == nil {
		t.Error("want error for empty writes")
	}
	if _, err := Optimize(OptimizeInput{Reads: []nodeset.Set{v}, Writes: []nodeset.Set{v}}); err == nil {
		t.Error("want error for empty members")
	}
}
