package coterie

import (
	"testing"

	"coterie/internal/nodeset"
)

func seqSet(n int) nodeset.Set {
	var v nodeset.Set
	for i := 0; i < n; i++ {
		v.Add(nodeset.ID(i))
	}
	return v
}

// TestEnumerateQuorumsValid asserts every enumerated candidate really is a
// quorum of its layout, for every rule family at several sizes.
func TestEnumerateQuorumsValid(t *testing.T) {
	rules := []Rule{
		Grid{}, Grid{Strict: true}, Grid{Ratio: 2},
		Majority{}, Majority{ReadQuorumSize: 2},
		Hierarchical{}, Wheel{}, ROWA{},
	}
	for _, rule := range rules {
		for _, n := range []int{1, 2, 3, 5, 7, 9, 12, 16} {
			lay := Compile(rule, seqSet(n))
			reads := lay.EnumerateReadQuorums(0)
			writes := lay.EnumerateWriteQuorums(0)
			if len(reads) == 0 || len(writes) == 0 {
				t.Errorf("%s n=%d: empty candidates (reads=%d writes=%d)", rule.Name(), n, len(reads), len(writes))
				continue
			}
			for _, q := range reads {
				if !lay.IsReadQuorum(q) {
					t.Errorf("%s n=%d: enumerated read candidate %v is not a read quorum", rule.Name(), n, q.IDs())
				}
			}
			for _, q := range writes {
				if !lay.IsWriteQuorum(q) {
					t.Errorf("%s n=%d: enumerated write candidate %v is not a write quorum", rule.Name(), n, q.IDs())
				}
			}
		}
	}
}

// TestEnumerateDistinct asserts candidates are deduplicated.
func TestEnumerateDistinct(t *testing.T) {
	for _, rule := range []Rule{Grid{}, Majority{}, Hierarchical{}, Wheel{}} {
		lay := Compile(rule, seqSet(9))
		for _, block := range [][]nodeset.Set{lay.EnumerateReadQuorums(0), lay.EnumerateWriteQuorums(0)} {
			seen := make(map[string]struct{}, len(block))
			for _, q := range block {
				k := setKey(q)
				if _, dup := seen[k]; dup {
					t.Errorf("%s: duplicate candidate %v", rule.Name(), q.IDs())
				}
				seen[k] = struct{}{}
			}
		}
	}
}

// TestEnumerateGridExact checks the 3x3 grid enumerates its full candidate
// spaces: 27 reads (3^3 covers) and writes = full column ∪ cover.
func TestEnumerateGridExact(t *testing.T) {
	lay := Compile(Grid{}, seqSet(9))
	reads := lay.EnumerateReadQuorums(0)
	if len(reads) != 27 {
		t.Errorf("3x3 grid read candidates = %d, want 27", len(reads))
	}
	writes := lay.EnumerateWriteQuorums(0)
	// Each of 3 full columns × 9 covers of the other two columns, minus
	// dedup overlap; at minimum the 3 bare column+cover families exist.
	if len(writes) < 9 {
		t.Errorf("3x3 grid write candidates = %d, want >= 9", len(writes))
	}
	// Per-node read coverage: every node appears in some read candidate.
	var cover nodeset.Set
	for _, q := range reads {
		cover = cover.Union(q)
	}
	if cover.Len() != 9 {
		t.Errorf("read candidates cover %d/9 nodes", cover.Len())
	}
}

// TestEnumerateLimit checks the limit is honored and sampling still
// produces distinct valid quorums for large structures.
func TestEnumerateLimit(t *testing.T) {
	lay := Compile(Majority{}, seqSet(24)) // C(24,13) >> limit
	reads := lay.EnumerateReadQuorums(64)
	if len(reads) == 0 || len(reads) > 64 {
		t.Fatalf("sampled majority candidates = %d, want 1..64", len(reads))
	}
	for _, q := range reads {
		if !lay.IsReadQuorum(q) {
			t.Errorf("sampled candidate %v not a read quorum", q.IDs())
		}
	}
	lay2 := Compile(Grid{}, seqSet(36)) // 6^6 = 46656 read covers
	reads2 := lay2.EnumerateReadQuorums(128)
	if len(reads2) != 128 {
		t.Fatalf("sampled grid candidates = %d, want 128", len(reads2))
	}
	for _, q := range reads2 {
		if !lay2.IsReadQuorum(q) {
			t.Errorf("sampled grid candidate %v not a read quorum", q.IDs())
		}
	}
}

// TestEnumerateDeterministic asserts two compilations of the same epoch
// enumerate identical candidate lists (required for replica agreement on
// pick-counter labels and distribution comparisons).
func TestEnumerateDeterministic(t *testing.T) {
	for _, rule := range []Rule{Grid{}, Majority{}, Hierarchical{}, Wheel{}} {
		a := Compile(rule, seqSet(13))
		b := Compile(rule, seqSet(13))
		ra, rb := a.EnumerateReadQuorums(0), b.EnumerateReadQuorums(0)
		if len(ra) != len(rb) {
			t.Fatalf("%s: candidate counts differ: %d vs %d", rule.Name(), len(ra), len(rb))
		}
		for i := range ra {
			if !ra[i].Equal(rb[i]) {
				t.Errorf("%s: candidate %d differs: %v vs %v", rule.Name(), i, ra[i].IDs(), rb[i].IDs())
			}
		}
	}
}
