package coterie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coterie/internal/nodeset"
)

func TestMajorityThresholds(t *testing.T) {
	m := Majority{}
	cases := []struct{ n, r, w int }{
		{1, 1, 1}, {2, 1, 2}, {3, 2, 2}, {4, 2, 3}, {5, 3, 3}, {9, 5, 5}, {10, 5, 6},
	}
	for _, c := range cases {
		r, w := m.Thresholds(c.n)
		if r != c.r || w != c.w {
			t.Errorf("Thresholds(%d) = (%d,%d), want (%d,%d)", c.n, r, w, c.r, c.w)
		}
	}
	if r, w := m.Thresholds(0); r != 0 || w != 0 {
		t.Errorf("Thresholds(0) = (%d,%d)", r, w)
	}
}

func TestMajorityReadSkew(t *testing.T) {
	m := Majority{ReadQuorumSize: 1}
	r, w := m.Thresholds(9)
	if r != 1 || w != 9 {
		t.Errorf("skewed Thresholds(9) = (%d,%d), want (1,9)", r, w)
	}
	// Read size capped at n.
	r, w = m.Thresholds(3)
	if r != 1 || w != 3 {
		t.Errorf("skewed Thresholds(3) = (%d,%d), want (1,3)", r, w)
	}
	// Skew larger than balanced read leaves the balanced write threshold.
	m = Majority{ReadQuorumSize: 8}
	r, w = m.Thresholds(9)
	if r != 8 || w != 5 {
		t.Errorf("Thresholds(9) with r=8: (%d,%d), want (8,5)", r, w)
	}
}

func TestMajorityQuorums(t *testing.T) {
	V := nodeset.Range(0, 9)
	m := Majority{}
	if !m.IsWriteQuorum(V, nodeset.Range(0, 5)) {
		t.Error("5 of 9 not a write quorum")
	}
	if m.IsWriteQuorum(V, nodeset.Range(0, 4)) {
		t.Error("4 of 9 is a write quorum")
	}
	// Members outside V do not count.
	s := nodeset.New(0, 1, 100, 101, 102)
	if m.IsWriteQuorum(V, s) {
		t.Error("foreign nodes counted")
	}
	q, ok := m.WriteQuorum(V, V, 7)
	if !ok || q.Len() != 5 {
		t.Errorf("WriteQuorum = %v, %v", q, ok)
	}
}

func TestMajorityHintRotation(t *testing.T) {
	V := nodeset.Range(0, 6)
	m := Majority{}
	q0, _ := m.WriteQuorum(V, V, 0)
	q3, _ := m.WriteQuorum(V, V, 3)
	if q0.Equal(q3) {
		t.Error("hints 0 and 3 picked identical quorums")
	}
	// Negative hints are valid.
	if _, ok := m.WriteQuorum(V, V, -5); !ok {
		t.Error("negative hint failed")
	}
}

func TestROWA(t *testing.T) {
	V := nodeset.Range(0, 4)
	r := ROWA{}
	if !r.IsReadQuorum(V, nodeset.New(2)) {
		t.Error("single node not a read quorum")
	}
	if r.IsWriteQuorum(V, nodeset.Range(0, 3)) {
		t.Error("partial set is a write quorum")
	}
	if !r.IsWriteQuorum(V, V) {
		t.Error("full set not a write quorum")
	}
	// Write quorum exists only when every node is available.
	if _, ok := r.WriteQuorum(V, nodeset.Range(0, 3), 0); ok {
		t.Error("write quorum despite failure")
	}
	q, ok := r.WriteQuorum(V, V, 0)
	if !ok || !q.Equal(V) {
		t.Errorf("WriteQuorum = %v, %v", q, ok)
	}
	rq, ok := r.ReadQuorum(V, nodeset.New(3), 0)
	if !ok || rq.Len() != 1 {
		t.Errorf("ReadQuorum = %v, %v", rq, ok)
	}
}

func TestHierarchicalQuorumSizes(t *testing.T) {
	h := Hierarchical{}
	// For N = 9 (two ternary levels) the quorum is 2 groups x 2 nodes = 4.
	V := nodeset.Range(0, 9)
	q, ok := h.ReadQuorum(V, V, 0)
	if !ok || q.Len() != 4 {
		t.Errorf("HQC quorum over 9 = %v (len %d), want 4", q, q.Len())
	}
	// For N = 27, 2x2x2 = 8 = 27^0.63.
	V = nodeset.Range(0, 27)
	q, ok = h.ReadQuorum(V, V, 0)
	if !ok || q.Len() != 8 {
		t.Errorf("HQC quorum over 27 len %d, want 8", q.Len())
	}
}

func TestHierarchicalIntersection(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 9, 10, 13} {
		V := nodeset.Range(0, nodeset.ID(n))
		if err := CheckIntersection(Hierarchical{}, V); err != nil {
			t.Errorf("N=%d: %v", n, err)
		}
	}
}

func TestHierarchicalDegree(t *testing.T) {
	h := Hierarchical{Degree: 5}
	V := nodeset.Range(0, 5)
	q, ok := h.ReadQuorum(V, V, 0)
	if !ok || q.Len() != 3 { // majority of 5 leaves
		t.Errorf("degree-5 quorum = %v", q)
	}
	if err := CheckIntersection(h, V); err != nil {
		t.Error(err)
	}
	// Degree below 2 falls back to the default.
	if (Hierarchical{Degree: 1}).degree() != 3 {
		t.Error("degree fallback broken")
	}
}

func TestHierarchicalFailures(t *testing.T) {
	h := Hierarchical{}
	V := nodeset.Range(0, 9)
	// Kill one whole ternary group: quorums must still exist from the
	// remaining two groups.
	avail := V.Diff(nodeset.Range(0, 3))
	q, ok := h.WriteQuorum(V, avail, 0)
	if !ok {
		t.Fatal("no quorum with one group down")
	}
	if q.Intersects(nodeset.Range(0, 3)) {
		t.Errorf("quorum %v uses down nodes", q)
	}
	// Kill two whole groups: impossible.
	if _, ok := h.WriteQuorum(V, nodeset.Range(6, 9), 0); ok {
		t.Error("quorum with two groups down")
	}
}

func TestAllRulesIntersectionSmallN(t *testing.T) {
	rules := []Rule{Grid{}, Grid{Strict: true}, Majority{}, Majority{ReadQuorumSize: 1}, Hierarchical{}, ROWA{}}
	for _, r := range rules {
		for n := 1; n <= 8; n++ {
			V := nodeset.Range(0, nodeset.ID(n))
			if err := CheckIntersection(r, V); err != nil {
				t.Errorf("%s N=%d: %v", r.Name(), n, err)
			}
		}
	}
}

func TestAllRulesConstruction(t *testing.T) {
	rules := []Rule{Grid{}, Grid{Strict: true}, Majority{}, Hierarchical{}, ROWA{}}
	r := rand.New(rand.NewSource(7))
	for _, rule := range rules {
		for trial := 0; trial < 200; trial++ {
			n := 1 + r.Intn(15)
			V := nodeset.Range(0, nodeset.ID(n))
			var avail nodeset.Set
			for _, id := range V.IDs() {
				if r.Intn(100) < 75 {
					avail.Add(id)
				}
			}
			if err := CheckConstruction(rule, V, avail, r.Int()); err != nil {
				t.Fatalf("%s: %v", rule.Name(), err)
			}
		}
	}
}

func TestEmptyUniverseAllRules(t *testing.T) {
	var V nodeset.Set
	for _, r := range []Rule{Grid{}, Majority{}, Hierarchical{}, ROWA{}} {
		if r.IsReadQuorum(V, nodeset.New(1)) || r.IsWriteQuorum(V, nodeset.New(1)) {
			t.Errorf("%s: quorum over empty universe", r.Name())
		}
		if _, ok := r.WriteQuorum(V, nodeset.New(1), 0); ok {
			t.Errorf("%s: constructed quorum over empty universe", r.Name())
		}
	}
}

func TestCheckIntersectionRejectsTooLarge(t *testing.T) {
	if err := CheckIntersection(Grid{}, nodeset.Range(0, 30)); err == nil {
		t.Error("CheckIntersection accepted 30 nodes")
	}
}

// brokenRule violates write-write intersection on purpose so the checker's
// failure path is itself tested.
type brokenRule struct{ Majority }

func (brokenRule) Name() string { return "broken" }
func (b brokenRule) IsWriteQuorum(V, S nodeset.Set) bool {
	return S.Intersect(V).Len() >= 1
}

func TestCheckIntersectionDetectsViolation(t *testing.T) {
	if err := CheckIntersection(brokenRule{}, nodeset.Range(0, 4)); err == nil {
		t.Error("checker missed a non-intersecting rule")
	}
}

// Property: for random universes and subsets, all rules agree that a
// constructed write quorum passes the read predicate's requirements where
// the protocol requires it (grid and majority write quorums include read
// quorums; HQC quorums are identical).
func TestQuickWriteImpliesRead(t *testing.T) {
	rules := []Rule{Grid{}, Majority{}, Hierarchical{}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(14)
		V := nodeset.Range(0, nodeset.ID(n))
		var s nodeset.Set
		for _, id := range V.IDs() {
			if r.Intn(2) == 0 {
				s.Add(id)
			}
		}
		for _, rule := range rules {
			if rule.IsWriteQuorum(V, s) && !rule.IsReadQuorum(V, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
