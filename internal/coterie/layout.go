package coterie

import "coterie/internal/nodeset"

// Layout is a coterie rule compiled against one specific epoch list V.
//
// The Rule interface re-derives the logical structure (grid positions, tree
// splits, hub election) from V on every call, which costs ordered-number
// lookups and heap allocations on every quorum check. A Layout performs
// that derivation once: per-column (grid), per-subtree (hierarchical) and
// per-spoke (wheel) membership is precomputed as nodeset.Set bitmasks plus
// the required cover counts, so the quorum predicates reduce to word-level
// AND/popcount operations with zero heap allocations, and quorum
// construction walks precomputed member lists instead of re-deriving
// positions.
//
// A Layout is valid exactly as long as its epoch: compile one Layout per
// (rule, epoch) pair and discard it when the epoch changes (see Cache for
// the epoch-number-keyed idiom the protocol layers use). Layouts are
// immutable after compilation and safe for concurrent use.
//
// Equivalence contract: for every S, avail and hint,
//
//	l.IsReadQuorum(S)          == rule.IsReadQuorum(V, S)
//	l.IsWriteQuorum(S)         == rule.IsWriteQuorum(V, S)
//	l.ReadQuorum(avail, hint)  == rule.ReadQuorum(V, avail, hint)
//	l.WriteQuorum(avail, hint) == rule.WriteQuorum(V, avail, hint)
//
// which the property tests in layout_test.go enforce against randomly drawn
// epochs and candidate sets.
type Layout struct {
	rule Rule
	v    nodeset.Set
	impl compiledRule
}

// compiledRule is the per-structure backend of a Layout. The predicate
// methods must not allocate.
type compiledRule interface {
	isReadQuorum(S nodeset.Set) bool
	isWriteQuorum(S nodeset.Set) bool
	readQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool)
	writeQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool)
}

// Compile builds the Layout of rule over the epoch list V. Rules without a
// specialized compiled form fall back to delegating every call to the rule
// itself (correct, but with the rule's own per-call costs).
func Compile(rule Rule, V nodeset.Set) *Layout {
	l := &Layout{rule: rule, v: V.Clone()}
	switch r := rule.(type) {
	case Grid:
		l.impl = compileGrid(r, l.v)
	case Hierarchical:
		l.impl = compileHierarchical(r, l.v)
	case Wheel:
		l.impl = compileWheel(l.v)
	case Majority:
		l.impl = compileMajority(r, l.v)
	case ROWA:
		l.impl = compileROWA(l.v)
	default:
		l.impl = fallbackRule{rule: rule, v: l.v}
	}
	return l
}

// Rule returns the rule the layout was compiled from.
func (l *Layout) Rule() Rule { return l.rule }

// Epoch returns the epoch list the layout was compiled for. The returned
// set must not be modified.
func (l *Layout) Epoch() nodeset.Set { return l.v }

// IsReadQuorum reports whether S includes a read quorum over the compiled
// epoch. It performs no heap allocations.
func (l *Layout) IsReadQuorum(S nodeset.Set) bool { return l.impl.isReadQuorum(S) }

// IsWriteQuorum reports whether S includes a write quorum over the compiled
// epoch. It performs no heap allocations.
func (l *Layout) IsWriteQuorum(S nodeset.Set) bool { return l.impl.isWriteQuorum(S) }

// ReadQuorum returns a read quorum drawn from avail ∩ V, equal to the
// quorum the source rule would construct for the same hint.
func (l *Layout) ReadQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return l.impl.readQuorum(avail, hint)
}

// WriteQuorum is ReadQuorum's analogue for write quorums.
func (l *Layout) WriteQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return l.impl.writeQuorum(avail, hint)
}

// GridShape reports the grid dimensions (rows × cols) the layout was
// compiled to when its rule is a grid coterie, and ok=false for every other
// structure. Observability layers use it to annotate quorum selections with
// the logical structure they were drawn from.
func (l *Layout) GridShape() (rows, cols int, ok bool) {
	if g, isGrid := l.impl.(*compiledGrid); isGrid && !g.empty {
		return g.rows, g.colCount, true
	}
	return 0, 0, false
}

// fallbackRule adapts an uncompiled Rule to the compiledRule interface.
type fallbackRule struct {
	rule Rule
	v    nodeset.Set
}

func (f fallbackRule) isReadQuorum(S nodeset.Set) bool  { return f.rule.IsReadQuorum(f.v, S) }
func (f fallbackRule) isWriteQuorum(S nodeset.Set) bool { return f.rule.IsWriteQuorum(f.v, S) }
func (f fallbackRule) readQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return f.rule.ReadQuorum(f.v, avail, hint)
}
func (f fallbackRule) writeQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return f.rule.WriteQuorum(f.v, avail, hint)
}

// --- grid ------------------------------------------------------------------

// compiledGrid holds one bitmask per grid column. A read quorum intersects
// every column mask; a write quorum additionally contains some column mask
// entirely (subject to the strict rule's full-height requirement).
type compiledGrid struct {
	empty bool
	// rows and colCount record the logical shape (M × N) the grid was
	// compiled to, for introspection (Layout.GridShape).
	rows     int
	colCount int
	cols     []nodeset.Set  // cols[j] = members of column j+1
	ids      [][]nodeset.ID // column members top-to-bottom (construction order)
	// full[j] is the member count a "fully covered" column j+1 requires, or
	// 0 when the column can never be full (strict rule, column shortened by
	// unoccupied positions).
	full []int
}

func compileGrid(g Grid, V nodeset.Set) *compiledGrid {
	c := &compiledGrid{empty: V.Empty()}
	if c.empty {
		return c
	}
	shape := g.shape(V.Len())
	c.rows, c.colCount = shape.M, shape.N
	c.cols = make([]nodeset.Set, shape.N)
	c.ids = make([][]nodeset.ID, shape.N)
	c.full = make([]int, shape.N)
	for j := 0; j < shape.N; j++ {
		h := shape.ColumnHeight(j + 1)
		if !g.Strict || h == shape.M {
			c.full[j] = h
		}
		c.ids[j] = make([]nodeset.ID, 0, h)
	}
	// Members fill the grid row-major in increasing name order, so walking
	// V in order assigns column (k-1) mod N and keeps each column's member
	// list in top-to-bottom row order.
	k := 0
	for _, id := range V.IDs() {
		j := k % shape.N
		c.cols[j].Add(id)
		c.ids[j] = append(c.ids[j], id)
		k++
	}
	return c
}

func (c *compiledGrid) isReadQuorum(S nodeset.Set) bool {
	if c.empty {
		return false
	}
	for _, col := range c.cols {
		if !S.Intersects(col) {
			return false
		}
	}
	return true
}

func (c *compiledGrid) isWriteQuorum(S nodeset.Set) bool {
	if c.empty {
		return false
	}
	anyFull := false
	for j, col := range c.cols {
		if !S.Intersects(col) {
			return false
		}
		if !anyFull && c.full[j] > 0 && S.ContainsAll(col) {
			anyFull = true
		}
	}
	return anyFull
}

// pickAvail returns the i-th (0-based) member of column j present in avail,
// given cnt = |avail ∩ cols[j]| > i.
func (c *compiledGrid) pickAvail(j, i int, avail nodeset.Set) nodeset.ID {
	for _, id := range c.ids[j] {
		if avail.Contains(id) {
			if i == 0 {
				return id
			}
			i--
		}
	}
	panic("coterie: compiled grid column pick out of range")
}

func (c *compiledGrid) readQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	if c.empty {
		return nodeset.Set{}, false
	}
	var q nodeset.Set
	for j, col := range c.cols {
		cnt := avail.IntersectionLen(col)
		if cnt == 0 {
			return nodeset.Set{}, false
		}
		// Same rotation as Grid.ReadQuorum: column number is 1-based there.
		q.Add(c.pickAvail(j, positiveMod(hint+j+1, cnt), avail))
	}
	return q, true
}

func (c *compiledGrid) writeQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	cover, ok := c.readQuorum(avail, hint)
	if !ok {
		return nodeset.Set{}, false
	}
	n := len(c.cols)
	for dj := 0; dj < n; dj++ {
		j := positiveMod(hint+dj, n)
		// A column is usable iff it can be full and all its members are
		// available — |avail ∩ col| == |col| == full[j].
		if c.full[j] > 0 && avail.ContainsAll(c.cols[j]) {
			q := cover.Union(c.cols[j])
			return q, true
		}
	}
	return nodeset.Set{}, false
}

// --- hierarchical ----------------------------------------------------------

// hqcNode is one node of the flattened quorum tree: either a leaf bound to
// a concrete member ID, or an internal node owning a child range within the
// shared children index slice and a majority threshold.
type hqcNode struct {
	leaf     bool
	id       nodeset.ID // leaf only
	children []int      // internal only: indices into compiledHierarchical.nodes
	need     int        // internal only: majority of children required
}

type compiledHierarchical struct {
	nodes []hqcNode
	root  int
	n     int
}

func compileHierarchical(h Hierarchical, V nodeset.Set) *compiledHierarchical {
	c := &compiledHierarchical{n: V.Len(), root: -1}
	if c.n == 0 {
		return c
	}
	leaves := V.IDs()
	c.root = c.buildTree(h, leaves, 0, len(leaves))
	return c
}

// buildTree mirrors Hierarchical.children's near-equal contiguous splits
// over the leaf range [lo, hi) and returns the index of the subtree root.
func (c *compiledHierarchical) buildTree(h Hierarchical, leaves []nodeset.ID, lo, hi int) int {
	if hi-lo == 1 {
		c.nodes = append(c.nodes, hqcNode{leaf: true, id: leaves[lo]})
		return len(c.nodes) - 1
	}
	bounds := h.children(lo, hi)
	k := len(bounds) - 1
	children := make([]int, 0, k)
	for i := 0; i < k; i++ {
		children = append(children, c.buildTree(h, leaves, bounds[i], bounds[i+1]))
	}
	c.nodes = append(c.nodes, hqcNode{children: children, need: k/2 + 1})
	return len(c.nodes) - 1
}

func (c *compiledHierarchical) has(i int, S nodeset.Set) bool {
	nd := &c.nodes[i]
	if nd.leaf {
		return S.Contains(nd.id)
	}
	got := 0
	for _, ch := range nd.children {
		if c.has(ch, S) {
			got++
		}
	}
	return got >= nd.need
}

func (c *compiledHierarchical) isReadQuorum(S nodeset.Set) bool {
	return c.root >= 0 && c.has(c.root, S)
}

func (c *compiledHierarchical) isWriteQuorum(S nodeset.Set) bool {
	return c.isReadQuorum(S)
}

// build mirrors Hierarchical.buildQuorum (same child rotation and hint
// division) over the precompiled tree, appending chosen member IDs to q.
func (c *compiledHierarchical) build(i int, avail nodeset.Set, hint int, q *[]nodeset.ID) bool {
	nd := &c.nodes[i]
	if nd.leaf {
		if !avail.Contains(nd.id) {
			return false
		}
		*q = append(*q, nd.id)
		return true
	}
	k := len(nd.children)
	got := 0
	for idx := 0; idx < k && got < nd.need; idx++ {
		ch := nd.children[positiveMod(hint+idx, k)]
		mark := len(*q)
		if c.build(ch, avail, hint/k, q) {
			got++
		} else {
			*q = (*q)[:mark]
		}
	}
	return got >= nd.need
}

func (c *compiledHierarchical) quorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	if c.root < 0 {
		return nodeset.Set{}, false
	}
	picks := make([]nodeset.ID, 0, c.n)
	if !c.build(c.root, avail, hint, &picks) {
		return nodeset.Set{}, false
	}
	return nodeset.New(picks...), true
}

func (c *compiledHierarchical) readQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return c.quorum(avail, hint)
}

func (c *compiledHierarchical) writeQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return c.quorum(avail, hint)
}

// --- wheel -----------------------------------------------------------------

type compiledWheel struct {
	empty  bool
	hub    nodeset.ID
	rim    nodeset.Set
	rimIDs []nodeset.ID
}

func compileWheel(V nodeset.Set) *compiledWheel {
	hub, ok := V.Min()
	if !ok {
		return &compiledWheel{empty: true}
	}
	rim := V.Clone()
	rim.Remove(hub)
	return &compiledWheel{hub: hub, rim: rim, rimIDs: rim.IDs()}
}

func (c *compiledWheel) isQuorum(S nodeset.Set) bool {
	if c.empty {
		return false
	}
	if len(c.rimIDs) == 0 {
		return S.Contains(c.hub)
	}
	if S.Contains(c.hub) && S.Intersects(c.rim) {
		return true
	}
	return S.ContainsAll(c.rim)
}

func (c *compiledWheel) isReadQuorum(S nodeset.Set) bool  { return c.isQuorum(S) }
func (c *compiledWheel) isWriteQuorum(S nodeset.Set) bool { return c.isQuorum(S) }

func (c *compiledWheel) quorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	if c.empty {
		return nodeset.Set{}, false
	}
	if len(c.rimIDs) == 0 {
		if avail.Contains(c.hub) {
			return nodeset.New(c.hub), true
		}
		return nodeset.Set{}, false
	}
	if avail.Contains(c.hub) {
		if cnt := avail.IntersectionLen(c.rim); cnt > 0 {
			i := positiveMod(hint, cnt)
			for _, id := range c.rimIDs {
				if avail.Contains(id) {
					if i == 0 {
						return nodeset.New(c.hub, id), true
					}
					i--
				}
			}
		}
	}
	if avail.ContainsAll(c.rim) {
		return c.rim.Clone(), true
	}
	return nodeset.Set{}, false
}

func (c *compiledWheel) readQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return c.quorum(avail, hint)
}

func (c *compiledWheel) writeQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return c.quorum(avail, hint)
}

// --- majority / ROWA -------------------------------------------------------

type compiledMajority struct {
	v           nodeset.Set
	ids         []nodeset.ID
	read, write int
}

func compileMajority(m Majority, V nodeset.Set) *compiledMajority {
	r, w := m.Thresholds(V.Len())
	return &compiledMajority{v: V, ids: V.IDs(), read: r, write: w}
}

func (c *compiledMajority) isReadQuorum(S nodeset.Set) bool {
	return c.read > 0 && c.v.IntersectionLen(S) >= c.read
}

func (c *compiledMajority) isWriteQuorum(S nodeset.Set) bool {
	return c.write > 0 && c.v.IntersectionLen(S) >= c.write
}

// pick mirrors pickRotated: the candidates are avail ∩ V in increasing
// order, and the quorum is the circular index range [start, start+size).
func (c *compiledMajority) pick(avail nodeset.Set, size, hint int) (nodeset.Set, bool) {
	cnt := c.v.IntersectionLen(avail)
	if size <= 0 || cnt < size {
		return nodeset.Set{}, false
	}
	start := positiveMod(hint, cnt)
	var q nodeset.Set
	ci := 0
	for _, id := range c.ids {
		if !avail.Contains(id) {
			continue
		}
		d := ci - start
		if d < 0 {
			d += cnt
		}
		if d < size {
			q.Add(id)
		}
		ci++
	}
	return q, true
}

func (c *compiledMajority) readQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return c.pick(avail, c.read, hint)
}

func (c *compiledMajority) writeQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return c.pick(avail, c.write, hint)
}

type compiledROWA struct {
	v   nodeset.Set
	one *compiledMajority // read side: any single member
}

func compileROWA(V nodeset.Set) *compiledROWA {
	return &compiledROWA{v: V, one: &compiledMajority{v: V, ids: V.IDs(), read: 1, write: V.Len()}}
}

func (c *compiledROWA) isReadQuorum(S nodeset.Set) bool {
	return !c.v.Empty() && S.Intersects(c.v)
}

func (c *compiledROWA) isWriteQuorum(S nodeset.Set) bool {
	return !c.v.Empty() && S.ContainsAll(c.v)
}

func (c *compiledROWA) readQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return c.one.pick(avail, 1, hint)
}

func (c *compiledROWA) writeQuorum(avail nodeset.Set, hint int) (nodeset.Set, bool) {
	if c.v.Empty() || !avail.ContainsAll(c.v) {
		return nodeset.Set{}, false
	}
	return c.v.Clone(), true
}
