package coterie

import "math"

// Alias is a Walker alias table: O(n) construction over a non-negative
// weight vector, O(1) weighted sampling with a single 64-bit uniform draw
// and no heap allocations. The optimized quorum strategies build one table
// per recompute tick and sample it on every request, so Pick is the hot
// path and must stay allocation-free (gated by TestAliasPickAllocs).
type Alias struct {
	n      int
	prob   []uint32 // prob[i]/2^32 = probability of keeping slot i
	remap  []int32  // alias slot used when the biased coin rejects i
	weight []float64
}

// aliasScale converts a [0,1) probability into the fixed-point prob space.
const aliasScale = float64(1 << 32)

// NewAlias builds the table for the given weights. Negative and NaN
// weights are treated as zero. If every weight is zero (or the slice is
// empty) the table is degenerate and Pick returns uniform slots so callers
// never lose liveness to a bad solver output.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	a := &Alias{
		n:      n,
		prob:   make([]uint32, n),
		remap:  make([]int32, n),
		weight: make([]float64, n),
	}
	var sum float64
	for i, w := range weights {
		if w > 0 && w == w { // drop negatives and NaN
			a.weight[i] = w
			sum += w
		}
	}
	if n == 0 {
		return a
	}
	if sum <= 0 {
		// Degenerate: uniform table.
		for i := range a.prob {
			a.prob[i] = ^uint32(0)
			a.remap[i] = int32(i)
		}
		return a
	}
	// Standard Vose construction: scale weights to mean 1, split into
	// small (<1) and large (>=1) work lists, pair them off.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range a.weight {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		p := scaled[s] * aliasScale
		if p >= aliasScale {
			a.prob[s] = ^uint32(0)
		} else {
			a.prob[s] = uint32(p)
		}
		a.remap[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers on either list take the full slot.
	for _, i := range large {
		a.prob[i] = ^uint32(0)
		a.remap[i] = i
	}
	for _, i := range small {
		a.prob[i] = ^uint32(0)
		a.remap[i] = i
	}
	return a
}

// Len returns the number of slots in the table.
func (a *Alias) Len() int { return a.n }

// Weight returns the (unnormalized) weight slot i was built with.
func (a *Alias) Weight(i int) float64 { return a.weight[i] }

// Pick maps one 64-bit draw to a slot index distributed according to the
// table's weights. It performs no heap allocations. The draw is first run
// through the splitmix64 finalizer — a bijection, so an already-uniform
// input stays uniform — because callers feed hints that are not uniform
// over the full word: the core strategy engine's hint() is int(x>>1),
// whose top bit is always zero, and without the remix the biased coin
// (high 32 bits) would only ever range over half its space, doubling
// every keep-probability. After the remix the low 32 bits choose the
// column and the high 32 bits flip the coin.
func (a *Alias) Pick(u uint64) int {
	if a.n == 0 {
		return -1
	}
	u += 0x9e3779b97f4a7c15
	u = (u ^ (u >> 30)) * 0xbf58476d1ce4e5b9
	u = (u ^ (u >> 27)) * 0x94d049bb133111eb
	u ^= u >> 31
	// Lemire-style range reduction of the low word onto [0, n).
	i := int(uint64(uint32(u)) * uint64(a.n) >> 32)
	if uint32(u>>32) <= a.prob[i] {
		return i
	}
	return int(a.remap[i])
}

// Entropy returns the Shannon entropy of the normalized weight vector in
// bits. Uniform over n slots gives log2(n); a point mass gives 0. The
// strategy layer publishes it so operators can see distribution collapse.
func (a *Alias) Entropy() float64 {
	var sum float64
	for _, w := range a.weight {
		sum += w
	}
	if sum <= 0 {
		if a.n <= 1 {
			return 0
		}
		return math.Log2(float64(a.n))
	}
	var h float64
	for _, w := range a.weight {
		if w <= 0 {
			continue
		}
		p := w / sum
		h -= p * math.Log2(p)
	}
	return h
}
