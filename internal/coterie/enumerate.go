package coterie

import "coterie/internal/nodeset"

// Candidate quorum enumeration for the optimized strategies.
//
// The optimizer needs an explicit list of the read and write quorums a
// compiled Layout admits so it can place probability mass on them. Small
// structures enumerate exactly; combinatorially large ones (wide grids,
// big majorities) are sampled deterministically so the candidate count
// stays bounded and recompute ticks stay cheap. Every returned set IS a
// quorum of the layout (minimal where the structure has a natural minimal
// form), which the property tests in enumerate_test.go assert against
// IsReadQuorum/IsWriteQuorum.

// DefaultEnumerateLimit caps the candidate quorums returned per block
// (reads, writes). 256 keeps the alias tables and per-candidate pick
// counters small while leaving the solver plenty of support to spread
// load over.
const DefaultEnumerateLimit = 256

// candidateEnumerator is implemented by compiled rules with a structural
// enumeration cheaper or more complete than hint sampling.
type candidateEnumerator interface {
	enumerateReads(limit int) []nodeset.Set
	enumerateWrites(limit int) []nodeset.Set
}

// EnumerateReadQuorums returns up to limit distinct read quorums of the
// layout, assuming every epoch member is available. limit <= 0 selects
// DefaultEnumerateLimit.
func (l *Layout) EnumerateReadQuorums(limit int) []nodeset.Set {
	if limit <= 0 {
		limit = DefaultEnumerateLimit
	}
	if e, ok := l.impl.(candidateEnumerator); ok {
		return e.enumerateReads(limit)
	}
	return l.sampleQuorums(limit, l.impl.readQuorum)
}

// EnumerateWriteQuorums is EnumerateReadQuorums' analogue for writes.
func (l *Layout) EnumerateWriteQuorums(limit int) []nodeset.Set {
	if limit <= 0 {
		limit = DefaultEnumerateLimit
	}
	if e, ok := l.impl.(candidateEnumerator); ok {
		return e.enumerateWrites(limit)
	}
	return l.sampleQuorums(limit, l.impl.writeQuorum)
}

// sampleQuorums is the structural fallback (hierarchical, wheel, custom
// rules): walk the rule's own hint space and deduplicate the quorums it
// constructs. The hint walk is deterministic, so two nodes compiling the
// same epoch enumerate identical candidate lists.
func (l *Layout) sampleQuorums(limit int, build func(avail nodeset.Set, hint int) (nodeset.Set, bool)) []nodeset.Set {
	n := l.v.Len()
	if n == 0 {
		return nil
	}
	// The hint space that matters is bounded by the structure size; probe a
	// generous multiple so rotation-based builders expose their full orbit,
	// then stop once new hints stop producing new quorums.
	probes := 8*n*n + 16
	out := make([]nodeset.Set, 0, minInt(limit, 16))
	seen := make(map[string]struct{}, minInt(limit, 16))
	for h := 0; h < probes && len(out) < limit; h++ {
		q, ok := build(l.v, h)
		if !ok {
			continue
		}
		k := setKey(q)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, q)
	}
	return out
}

// setKey renders a set's bit words into a map key. Trailing zero words are
// elided so sparse sets key identically regardless of backing capacity.
func setKey(s nodeset.Set) string {
	var buf [nodeset.MaxNodes / 8]byte
	n := 0
	for i := 0; i < nodeset.MaxNodes/64; i++ {
		w := s.Word(i)
		buf[n+0] = byte(w)
		buf[n+1] = byte(w >> 8)
		buf[n+2] = byte(w >> 16)
		buf[n+3] = byte(w >> 24)
		buf[n+4] = byte(w >> 32)
		buf[n+5] = byte(w >> 40)
		buf[n+6] = byte(w >> 48)
		buf[n+7] = byte(w >> 56)
		n += 8
	}
	for n > 0 && buf[n-1] == 0 {
		n--
	}
	return string(buf[:n])
}

// enumMix64 is the splitmix64 finalizer used to derive deterministic
// per-sample member choices during sampled enumeration.
func enumMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- grid ------------------------------------------------------------------

// enumerateReads walks the cross-product of column members: one member per
// column. When the product exceeds limit it strides through the mixed-radix
// index space so samples spread across all columns instead of clustering in
// the low columns.
func (c *compiledGrid) enumerateReads(limit int) []nodeset.Set {
	if c.empty {
		return nil
	}
	total := 1
	for _, ids := range c.ids {
		if len(ids) == 0 {
			return nil
		}
		if total > limit/len(ids)+1 {
			total = limit + 1 // saturate; avoid overflow
			break
		}
		total *= len(ids)
	}
	if total <= limit {
		// Exact cross-product in mixed-radix order.
		out := make([]nodeset.Set, 0, total)
		for idx := 0; idx < total; idx++ {
			var q nodeset.Set
			rem := idx
			for _, ids := range c.ids {
				q.Add(ids[rem%len(ids)])
				rem /= len(ids)
			}
			out = append(out, q)
		}
		return out
	}
	// Sampled: a splitmix64 stream per sample chooses one member per column
	// independently, so every column varies across the candidate list.
	out := make([]nodeset.Set, 0, limit)
	seen := make(map[string]struct{}, limit)
	for k := 0; len(out) < limit && k < 4*limit; k++ {
		var q nodeset.Set
		for j, ids := range c.ids {
			u := enumMix64(uint64(k)<<16 | uint64(j))
			q.Add(ids[int(u%uint64(len(ids)))])
		}
		key := setKey(q)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, q)
	}
	return out
}

// enumerateWrites pairs each full column with a cover of the remaining
// columns: for each usable column j, emit quorums column[j] ∪ {one member
// per other column}, striding the cover space like enumerateReads.
func (c *compiledGrid) enumerateWrites(limit int) []nodeset.Set {
	if c.empty {
		return nil
	}
	usable := make([]int, 0, len(c.cols))
	for j := range c.cols {
		if c.full[j] > 0 && len(c.ids[j]) == c.full[j] {
			usable = append(usable, j)
		}
	}
	if len(usable) == 0 {
		return nil
	}
	per := limit / len(usable)
	if per < 1 {
		per = 1
	}
	out := make([]nodeset.Set, 0, limit)
	seen := make(map[string]struct{}, limit)
	for _, j := range usable {
		// Cover product over the other columns.
		total := 1
		for jj, ids := range c.ids {
			if jj == j {
				continue
			}
			if total > per/len(ids)+1 {
				total = per + 1 // saturate
				break
			}
			total *= len(ids)
		}
		added := 0
		emit := func(q nodeset.Set) {
			key := setKey(q)
			if _, dup := seen[key]; dup {
				return
			}
			seen[key] = struct{}{}
			out = append(out, q)
			added++
		}
		if total <= per {
			for idx := 0; idx < total; idx++ {
				q := c.cols[j].Clone()
				rem := idx
				for jj, ids := range c.ids {
					if jj == j {
						continue
					}
					q.Add(ids[rem%len(ids)])
					rem /= len(ids)
				}
				emit(q)
			}
			continue
		}
		for k := 0; added < per && k < 4*per; k++ {
			q := c.cols[j].Clone()
			for jj, ids := range c.ids {
				if jj == j {
					continue
				}
				u := enumMix64(uint64(j)<<32 | uint64(k)<<16 | uint64(jj))
				q.Add(ids[int(u%uint64(len(ids)))])
			}
			emit(q)
		}
	}
	return out
}

// --- majority --------------------------------------------------------------

// enumerate returns up to limit distinct size-k subsets of the epoch. Small
// C(n,k) enumerates exactly via revolving-door order; large spaces fall back
// to rotation sampling (contiguous circular windows plus strided windows),
// which still gives the solver per-node degrees of freedom.
func (c *compiledMajority) enumerate(k, limit int) []nodeset.Set {
	n := len(c.ids)
	if k <= 0 || k > n {
		return nil
	}
	if binomialAtMost(n, k, limit) {
		out := make([]nodeset.Set, 0, limit)
		idx := make([]int, k)
		for i := range idx {
			idx[i] = i
		}
		for {
			var q nodeset.Set
			for _, i := range idx {
				q.Add(c.ids[i])
			}
			out = append(out, q)
			// Next combination in lexicographic order.
			i := k - 1
			for i >= 0 && idx[i] == n-k+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < k; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
		return out
	}
	// Sampled: circular windows at every start, then strided windows, until
	// the limit fills. Deterministic and node-ID symmetric.
	out := make([]nodeset.Set, 0, limit)
	for stride := 1; stride < n && len(out) < limit; stride++ {
		for start := 0; start < n && len(out) < limit; start++ {
			var q nodeset.Set
			for i := 0; i < k; i++ {
				q.Add(c.ids[(start+i*stride)%n])
			}
			if q.Len() == k {
				out = append(out, q)
			}
		}
	}
	return dedupSets(out)
}

func (c *compiledMajority) enumerateReads(limit int) []nodeset.Set {
	return c.enumerate(c.read, limit)
}

func (c *compiledMajority) enumerateWrites(limit int) []nodeset.Set {
	return c.enumerate(c.write, limit)
}

// binomialAtMost reports whether C(n,k) <= limit without overflowing.
func binomialAtMost(n, k, limit int) bool {
	if k > n-k {
		k = n - k
	}
	acc := 1
	for i := 1; i <= k; i++ {
		acc = acc * (n - k + i) / i
		if acc > limit {
			return false
		}
	}
	return acc <= limit
}

// --- ROWA ------------------------------------------------------------------

func (c *compiledROWA) enumerateReads(limit int) []nodeset.Set {
	ids := c.v.IDs()
	if len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]nodeset.Set, 0, len(ids))
	for _, id := range ids {
		out = append(out, nodeset.New(id))
	}
	return out
}

func (c *compiledROWA) enumerateWrites(int) []nodeset.Set {
	if c.v.Empty() {
		return nil
	}
	return []nodeset.Set{c.v.Clone()}
}

// dedupSets removes duplicate sets preserving first-seen order.
func dedupSets(in []nodeset.Set) []nodeset.Set {
	if len(in) < 2 {
		return in
	}
	seen := make(map[string]struct{}, len(in))
	out := in[:0]
	for _, s := range in {
		k := setKey(s)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, s)
	}
	return out
}
