package coterie

import (
	"fmt"
	"math"

	"coterie/internal/nodeset"
)

// Quorum-distribution optimizer.
//
// Given the candidate read and write quorums a Layout admits, per-node
// capacity weights, and (optionally) the live per-endpoint load the obs
// layer measures, Optimize solves for a probability distribution over the
// candidates that maximizes sustainable throughput: the load-maximizing
// weighted quorum systems of Whittaker et al. ("Read-Write Quorum Systems
// Made Practical"), with WOC-style heterogeneous node weights.
//
// The LP is
//
//	max  C                        (sustained ops/sec)
//	s.t. Σ_r p_r = 1, Σ_w q_w = 1, p,q ≥ 0
//	     ∀i:  C·(fr·Σ_{r∋i} p_r + (1-fr)·Σ_{w∋i} q_w) ≤ cap_i
//
// equivalently: minimize the peak normalized per-node utilization
// u_i = x_i/cap_i where x_i is node i's expected per-op touch rate. We
// solve the minimax by Frank-Wolfe on the softmax-smoothed objective
// (1/η)·log Σ_i exp(η·u_i): each iteration prices every node at the
// softmax gradient s_i/cap_i, picks the cheapest candidate quorum per
// block (the linear minimization oracle is exactly "cheapest quorum under
// current prices"), and steps with γ_t = 2/(t+2). The iteration count is
// fixed and the arithmetic is deterministic, so every replica that feeds
// the solver identical inputs computes the identical distribution.
type OptimizeInput struct {
	// Reads and Writes are the candidate quorums (see EnumerateReadQuorums /
	// EnumerateWriteQuorums). Both must be non-empty.
	Reads  []nodeset.Set
	Writes []nodeset.Set
	// Members is the node universe utilization is tracked over; usually the
	// layout epoch's IDs.
	Members []nodeset.ID
	// ReadFrac is the expected fraction of operations that are reads, in
	// [0,1]. Negative means unset (0.5 is assumed). The boundary values
	// are genuine workloads — 0 is pure-write, 1 is pure-read — and are
	// clamped just inside (0,1) so both blocks keep finite prices.
	ReadFrac float64
	// Capacity returns node i's relative service capacity (ops/sec scale;
	// only ratios matter). nil means homogeneous capacity 1.0. Values ≤ 0
	// are clamped to a small epsilon so a mis-configured node is avoided
	// rather than dividing by zero.
	Capacity LoadFunc
	// Load optionally returns node i's live EWMA request rate. When set,
	// LoadBlend·load_i/Σload is added to node i's modeled utilization
	// numerator, steering the solved distribution away from endpoints that
	// are currently hot for reasons the model cannot see (other items,
	// background work). It is a heuristic: our own steered traffic is part
	// of that EWMA too, so the blend is kept below 1.
	Load      LoadFunc
	LoadBlend float64 // 0 means default 0.5; only used when Load != nil
	// ReadSizeBias adds bias·|r| to each read candidate's price in the
	// linear oracle, skewing read mass toward small (cheap) quorums — the
	// read-dominant mode per Kumar & Agarwal. 0 disables. The solved
	// objective becomes peak-utilization + bias·E[|read quorum|].
	ReadSizeBias float64
	// Iters is the Frank-Wolfe iteration count (0 = 300). Eta is the
	// softmax sharpness (0 = 32).
	Iters int
	Eta   float64
}

// Distribution is a solved weighted quorum strategy.
type Distribution struct {
	// ReadWeights[k] / WriteWeights[k] are the probabilities assigned to
	// input candidate k. Each block sums to 1.
	ReadWeights  []float64
	WriteWeights []float64
	// Capacity is the predicted sustainable throughput 1/max_i u_i in
	// multiples of a single unit-capacity node's rate (heuristic when Load
	// is folded in).
	Capacity float64
	// PeakUtil is max_i u_i at the solution, Utilization the per-member
	// value (parallel to Members).
	PeakUtil    float64
	Utilization []float64
}

const (
	defaultIters = 300
	defaultEta   = 32.0
	capEpsilon   = 1e-6
)

// Optimize solves for the capacity-maximizing distribution. It returns an
// error when either candidate block is empty or Members is empty; the
// caller falls back to the unweighted strategies in that case.
func Optimize(in OptimizeInput) (Distribution, error) {
	if len(in.Reads) == 0 || len(in.Writes) == 0 {
		return Distribution{}, fmt.Errorf("coterie: optimize needs candidates (reads=%d writes=%d)", len(in.Reads), len(in.Writes))
	}
	if len(in.Members) == 0 {
		return Distribution{}, fmt.Errorf("coterie: optimize needs a member universe")
	}
	fr := in.ReadFrac
	switch {
	case fr < 0: // negative sentinel: caller has no measured mix
		fr = 0.5
	case fr == 0: // pure-write workload: clamp inside (0,1) so reads keep finite prices
		fr = 1e-3
	case fr >= 1: // pure-read workload: same clamp on the other side
		fr = 1 - 1e-3
	}
	iters := in.Iters
	if iters <= 0 {
		iters = defaultIters
	}
	eta := in.Eta
	if eta <= 0 {
		eta = defaultEta
	}

	n := len(in.Members)
	index := make(map[nodeset.ID]int, n)
	cap_ := make([]float64, n)
	base := make([]float64, n)
	for i, id := range in.Members {
		index[id] = i
		c := 1.0
		if in.Capacity != nil {
			c = in.Capacity(id)
		}
		if c < capEpsilon {
			c = capEpsilon
		}
		cap_[i] = c
	}
	if in.Load != nil {
		blend := in.LoadBlend
		if blend <= 0 {
			blend = 0.5
		}
		var sum float64
		raw := make([]float64, n)
		for i, id := range in.Members {
			l := in.Load(id)
			if l > 0 && l == l {
				raw[i] = l
				sum += l
			}
		}
		if sum > 0 {
			for i := range base {
				// Per-op load share: scaled so Σ base = blend, matching the
				// unit where one op distributes 1 expected touch per block.
				base[i] = blend * raw[i] / sum
			}
		}
	}

	// Per-candidate member index lists, resolved once.
	rIdx := memberIndexLists(in.Reads, index)
	wIdx := memberIndexLists(in.Writes, index)

	p := uniformVec(len(in.Reads))
	q := uniformVec(len(in.Writes))
	util := make([]float64, n)
	price := make([]float64, n)

	computeUtil := func() {
		for i := range util {
			util[i] = base[i]
		}
		for k, members := range rIdx {
			w := fr * p[k]
			for _, i := range members {
				util[i] += w
			}
		}
		for k, members := range wIdx {
			w := (1 - fr) * q[k]
			for _, i := range members {
				util[i] += w
			}
		}
		for i := range util {
			util[i] /= cap_[i]
		}
	}

	for t := 0; t < iters; t++ {
		computeUtil()
		// Softmax prices s_i (stabilized by max subtraction); the price of
		// touching node i is s_i/cap_i.
		maxU := util[0]
		for _, u := range util[1:] {
			if u > maxU {
				maxU = u
			}
		}
		var z float64
		for i, u := range util {
			e := math.Exp(eta * (u - maxU))
			price[i] = e
			z += e
		}
		for i := range price {
			price[i] = price[i] / z / cap_[i]
		}
		// Linear minimization oracle per block: cheapest candidate.
		br, bw := 0, 0
		best := math.Inf(1)
		for k, members := range rIdx {
			c := in.ReadSizeBias * float64(len(members))
			for _, i := range members {
				c += fr * price[i]
			}
			if c < best {
				best, br = c, k
			}
		}
		best = math.Inf(1)
		for k, members := range wIdx {
			var c float64
			for _, i := range members {
				c += (1 - fr) * price[i]
			}
			if c < best {
				best, bw = c, k
			}
		}
		gamma := 2.0 / float64(t+2)
		for k := range p {
			p[k] *= 1 - gamma
		}
		p[br] += gamma
		for k := range q {
			q[k] *= 1 - gamma
		}
		q[bw] += gamma
	}

	computeUtil()
	peak := 0.0
	for _, u := range util {
		if u > peak {
			peak = u
		}
	}
	d := Distribution{
		ReadWeights:  p,
		WriteWeights: q,
		PeakUtil:     peak,
		Utilization:  util,
	}
	if peak > 0 {
		d.Capacity = 1 / peak
	}
	return d, nil
}

func memberIndexLists(sets []nodeset.Set, index map[nodeset.ID]int) [][]int {
	out := make([][]int, len(sets))
	for k, s := range sets {
		ids := s.IDs()
		lst := make([]int, 0, len(ids))
		for _, id := range ids {
			if i, ok := index[id]; ok {
				lst = append(lst, i)
			}
		}
		out[k] = lst
	}
	return out
}

func uniformVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / float64(n)
	}
	return v
}
