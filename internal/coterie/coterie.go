// Package coterie implements coterie rules: deterministic functions that,
// given an arbitrary ordered set of nodes V, decide whether a set S includes
// a read or write quorum over V, and that construct concrete quorums.
//
// A coterie over V (paper, Section 3) is a pair of antichains W (write
// quorums) and R (read quorums) of subsets of V such that any two write
// quorums intersect and any read quorum intersects any write quorum. The
// dynamic protocols in this module never enumerate coteries explicitly;
// they rely on a coterie rule — coterie-rule(V, S) in the paper — evaluated
// against the current epoch list, plus a quorum function that yields a
// concrete quorum for a coordinator (paper, Section 4).
//
// Implementations provided:
//
//   - Grid: the grid protocol of Cheung, Ammar and Ahamad (paper, Section 5),
//     including the Neuman partial-column optimization.
//   - Majority: Gifford-style voting with one vote per node.
//   - Hierarchical: Kumar's hierarchical quorum consensus over a ternary tree.
//   - ROWA: read-one/write-all.
//
// All rules are pure and deterministic: every node evaluating a rule against
// the same epoch list V reaches the same conclusions, which is what lets the
// epoch mechanism re-impose logical structure after membership changes.
package coterie

import "coterie/internal/nodeset"

// Rule decides quorum membership over an arbitrary ordered node set and
// constructs concrete quorums. Implementations must be deterministic
// functions of their arguments.
//
// For both predicates, S is interpreted as S ∩ V: members of S outside V
// never help form a quorum.
type Rule interface {
	// Name identifies the rule, e.g. "grid".
	Name() string

	// IsReadQuorum reports whether S includes a read quorum over V.
	IsReadQuorum(V, S nodeset.Set) bool

	// IsWriteQuorum reports whether S includes a write quorum over V.
	IsWriteQuorum(V, S nodeset.Set) bool

	// ReadQuorum returns a read quorum over V drawn from avail ∩ V.
	// hint selects among alternative quorums for load sharing (the paper's
	// quorum function takes the coordinator's node name; callers typically
	// pass a value derived from it). Returns ok=false if avail contains no
	// read quorum.
	ReadQuorum(V, avail nodeset.Set, hint int) (q nodeset.Set, ok bool)

	// WriteQuorum is ReadQuorum's analogue for write quorums.
	WriteQuorum(V, avail nodeset.Set, hint int) (q nodeset.Set, ok bool)
}

// positiveMod returns x mod m in [0, m), for m > 0.
func positiveMod(x, m int) int {
	r := x % m
	if r < 0 {
		r += m
	}
	return r
}
