package coterie

import (
	"math/rand"
	"testing"

	"coterie/internal/nodeset"
)

// loadedRules are the rules whose compiled layouts implement load-aware
// selection; the others must fall back to the hint path transparently.
var loadedTestRules = []Rule{
	Grid{}, Grid{Strict: true}, Grid{Ratio: 2},
	Majority{}, ROWA{},
	Hierarchical{}, Wheel{}, // hint fallback only
}

// TestLoadedQuorumsAreValidQuorums is the contract property test: for any
// rule, member set, availability subset, load assignment and hint, a
// loaded quorum must (a) exist exactly when the hint path finds one, (b)
// be drawn from the available set, and (c) satisfy the layout's own
// quorum predicate. Load may only change WHICH valid quorum is picked.
func TestLoadedQuorumsAreValidQuorums(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{1, 2, 4, 9, 16, 25}
	for _, rule := range loadedTestRules {
		for _, n := range sizes {
			V := nodeset.Range(0, nodeset.ID(n))
			lay := Compile(rule, V)
			for trial := 0; trial < 200; trial++ {
				var avail nodeset.Set
				for _, id := range V.IDs() {
					if rng.Intn(4) != 0 { // ~75% availability
						avail.Add(id)
					}
				}
				loads := make([]float64, n)
				for i := range loads {
					loads[i] = float64(rng.Intn(100))
				}
				load := func(id nodeset.ID) float64 { return loads[id] }
				hint := rng.Int()

				rq, rok := lay.ReadQuorumLoaded(avail, load, hint)
				rqh, rokh := lay.ReadQuorum(avail, hint)
				if rok != rokh {
					t.Fatalf("%s n=%d: loaded read ok=%v, hint ok=%v (avail %v)", rule.Name(), n, rok, rokh, avail)
				}
				if rok {
					if !rq.Subset(avail) {
						t.Fatalf("%s n=%d: read quorum %v not within avail %v", rule.Name(), n, rq, avail)
					}
					if !lay.IsReadQuorum(rq) {
						t.Fatalf("%s n=%d: loaded pick %v is not a read quorum (avail %v)", rule.Name(), n, rq, avail)
					}
				}
				_ = rqh

				wq, wok := lay.WriteQuorumLoaded(avail, load, hint)
				_, wokh := lay.WriteQuorum(avail, hint)
				if wok != wokh {
					t.Fatalf("%s n=%d: loaded write ok=%v, hint ok=%v (avail %v)", rule.Name(), n, wok, wokh, avail)
				}
				if wok {
					if !wq.Subset(avail) {
						t.Fatalf("%s n=%d: write quorum %v not within avail %v", rule.Name(), n, wq, avail)
					}
					if !lay.IsWriteQuorum(wq) {
						t.Fatalf("%s n=%d: loaded pick %v is not a write quorum (avail %v)", rule.Name(), n, wq, avail)
					}
				}
			}
		}
	}
}

// TestLoadedUniformMatchesHint: with an all-equal load signal the
// tie-break must reproduce the hint rotation's pick exactly, so enabling
// load-aware selection on an idle system changes nothing.
func TestLoadedUniformMatchesHint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	uniform := func(nodeset.ID) float64 { return 1 }
	for _, rule := range loadedTestRules {
		V := nodeset.Range(0, 9)
		lay := Compile(rule, V)
		for trial := 0; trial < 200; trial++ {
			var avail nodeset.Set
			for _, id := range V.IDs() {
				if rng.Intn(5) != 0 {
					avail.Add(id)
				}
			}
			hint := rng.Int()
			rq, rok := lay.ReadQuorumLoaded(avail, uniform, hint)
			rqh, rokh := lay.ReadQuorum(avail, hint)
			if rok != rokh || (rok && !rq.Equal(rqh)) {
				t.Fatalf("%s: uniform load read pick %v (ok=%v) != hint pick %v (ok=%v)", rule.Name(), rq, rok, rqh, rokh)
			}
			wq, wok := lay.WriteQuorumLoaded(avail, uniform, hint)
			wqh, wokh := lay.WriteQuorum(avail, hint)
			if wok != wokh || (wok && !wq.Equal(wqh)) {
				t.Fatalf("%s: uniform load write pick %v (ok=%v) != hint pick %v (ok=%v)", rule.Name(), wq, wok, wqh, wokh)
			}
		}
	}
}

// TestLoadedQuorumAvoidsHotNode: when one node is much more loaded than
// its alternatives, no read quorum should include it (grid columns and
// majority pools both offer substitutes with everything available).
func TestLoadedQuorumAvoidsHotNode(t *testing.T) {
	V := nodeset.Range(0, 9)
	hot := nodeset.ID(4)
	load := func(id nodeset.ID) float64 {
		if id == hot {
			return 1000
		}
		return 1
	}
	for _, rule := range []Rule{Grid{}, Majority{}, ROWA{}} {
		lay := Compile(rule, V)
		for hint := 0; hint < 50; hint++ {
			q, ok := lay.ReadQuorumLoaded(V, load, hint)
			if !ok {
				t.Fatalf("%s: no read quorum with everything available", rule.Name())
			}
			if q.Contains(hot) {
				t.Fatalf("%s hint=%d: read quorum %v includes the hot node", rule.Name(), hint, q)
			}
		}
	}
}

// TestLoadedWriteQuorumPrefersColdColumn: a grid write quorum must take
// the fully-available column with the least total load.
func TestLoadedWriteQuorumPrefersColdColumn(t *testing.T) {
	V := nodeset.Range(0, 9)
	lay := Compile(Grid{}, V)
	rows, cols, ok := lay.GridShape()
	if !ok || rows != 3 || cols != 3 {
		t.Fatalf("unexpected grid shape %dx%d ok=%v", rows, cols, ok)
	}
	// Members fill the grid row-major, so node k sits in column k mod 3:
	// column 0 = {0,3,6}. Make it cold and everything else hot.
	coldCol := nodeset.New(0, 3, 6)
	load := func(id nodeset.ID) float64 {
		if coldCol.Contains(id) {
			return 1
		}
		return 100
	}
	for hint := 0; hint < 50; hint++ {
		q, ok := lay.WriteQuorumLoaded(V, load, hint)
		if !ok {
			t.Fatal("no write quorum with everything available")
		}
		if !coldCol.Subset(q) {
			t.Fatalf("hint=%d: write quorum %v does not contain the cold column %v", hint, q, coldCol)
		}
	}
}
