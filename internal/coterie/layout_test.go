package coterie

import (
	"fmt"
	"math/rand"
	"testing"

	"coterie/internal/nodeset"
)

// layoutCases is the number of random cases each rule's property test
// draws. The ISSUE acceptance bar is 10_000 per rule.
const layoutCases = 10_000

// randomSet draws a subset of 0..universe-1 where every ID is included
// independently with probability density.
func randomSet(rng *rand.Rand, universe int, density float64) nodeset.Set {
	var s nodeset.Set
	for id := 0; id < universe; id++ {
		if rng.Float64() < density {
			s.Add(nodeset.ID(id))
		}
	}
	return s
}

// randomEpoch draws an epoch of exactly size members from 0..universe-1.
func randomEpoch(rng *rand.Rand, universe, size int) nodeset.Set {
	perm := rng.Perm(universe)
	var v nodeset.Set
	for _, id := range perm[:size] {
		v.Add(nodeset.ID(id))
	}
	return v
}

// TestLayoutMatchesRules is the compiled-layout equivalence property test:
// for random epochs (sizes 1..64, drawn from a larger ID universe so
// candidate sets contain non-members) and random candidate/availability
// sets, every Layout method must agree exactly — same predicate, same ok,
// same constructed set — with the naive rule it was compiled from.
func TestLayoutMatchesRules(t *testing.T) {
	rules := []Rule{
		Grid{},
		Grid{Strict: true},
		Grid{Ratio: 2},
		Grid{Strict: true, Ratio: 0.5},
		Hierarchical{},
		Wheel{},
		Majority{},
		ROWA{},
	}
	for _, rule := range rules {
		rule := rule
		t.Run(fmt.Sprintf("%s-strict=%v", rule.Name(), rule), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(0x1a40))
			const universe = 96 // epochs use at most 64 of these IDs
			for i := 0; i < layoutCases; i++ {
				size := 1 + rng.Intn(64)
				V := randomEpoch(rng, universe, size)
				layout := Compile(rule, V)

				// Candidate sets are drawn over the whole universe: S ∩ V
				// semantics must hold with members outside V present. The
				// density sweep exercises both sparse sets (quorum misses)
				// and dense sets (quorum hits).
				density := []float64{0.2, 0.5, 0.8, 0.95}[i%4]
				S := randomSet(rng, universe, density)
				avail := randomSet(rng, universe, density)
				hint := rng.Intn(4096) - 64

				if got, want := layout.IsReadQuorum(S), rule.IsReadQuorum(V, S); got != want {
					t.Fatalf("case %d: IsReadQuorum mismatch: layout %v, rule %v\nV=%v\nS=%v",
						i, got, want, V, S)
				}
				if got, want := layout.IsWriteQuorum(S), rule.IsWriteQuorum(V, S); got != want {
					t.Fatalf("case %d: IsWriteQuorum mismatch: layout %v, rule %v\nV=%v\nS=%v",
						i, got, want, V, S)
				}
				gq, gok := layout.ReadQuorum(avail, hint)
				wq, wok := rule.ReadQuorum(V, avail, hint)
				if gok != wok || !gq.Equal(wq) {
					t.Fatalf("case %d: ReadQuorum mismatch: layout (%v,%v), rule (%v,%v)\nV=%v\navail=%v hint=%d",
						i, gq, gok, wq, wok, V, avail, hint)
				}
				if gok {
					if !gq.Subset(V.Intersect(avail)) {
						t.Fatalf("case %d: read quorum %v not within avail ∩ V", i, gq)
					}
					if !rule.IsReadQuorum(V, gq) {
						t.Fatalf("case %d: constructed read quorum %v fails the rule predicate", i, gq)
					}
				}
				gq, gok = layout.WriteQuorum(avail, hint)
				wq, wok = rule.WriteQuorum(V, avail, hint)
				if gok != wok || !gq.Equal(wq) {
					t.Fatalf("case %d: WriteQuorum mismatch: layout (%v,%v), rule (%v,%v)\nV=%v\navail=%v hint=%d",
						i, gq, gok, wq, wok, V, avail, hint)
				}
				if gok {
					if !gq.Subset(V.Intersect(avail)) {
						t.Fatalf("case %d: write quorum %v not within avail ∩ V", i, gq)
					}
					if !rule.IsWriteQuorum(V, gq) {
						t.Fatalf("case %d: constructed write quorum %v fails the rule predicate", i, gq)
					}
				}
			}
		})
	}
}

// TestLayoutEmptyEpoch pins the degenerate cases: nothing is a quorum over
// an empty epoch and no quorum is constructible.
func TestLayoutEmptyEpoch(t *testing.T) {
	for _, rule := range []Rule{Grid{}, Grid{Strict: true}, Hierarchical{}, Wheel{}, Majority{}, ROWA{}} {
		layout := Compile(rule, nodeset.Set{})
		any := nodeset.New(1, 2, 3)
		if layout.IsReadQuorum(any) || layout.IsWriteQuorum(any) {
			t.Errorf("%s: quorum over empty epoch", rule.Name())
		}
		if _, ok := layout.ReadQuorum(any, 0); ok {
			t.Errorf("%s: read quorum constructed over empty epoch", rule.Name())
		}
		if _, ok := layout.WriteQuorum(any, 0); ok {
			t.Errorf("%s: write quorum constructed over empty epoch", rule.Name())
		}
	}
}

// fancyRule is an uncompiled rule exercising the fallback path.
type fancyRule struct{ Majority }

func (fancyRule) Name() string { return "fancy" }

// TestLayoutFallback verifies rules without a specialized compiled form
// still behave identically through the Layout adapter.
func TestLayoutFallback(t *testing.T) {
	rule := fancyRule{}
	V := nodeset.Range(0, 7)
	layout := Compile(rule, V)
	S := nodeset.New(0, 1, 2, 3)
	if layout.IsWriteQuorum(S) != rule.IsWriteQuorum(V, S) {
		t.Error("fallback IsWriteQuorum diverges")
	}
	q1, ok1 := layout.WriteQuorum(V, 3)
	q2, ok2 := rule.WriteQuorum(V, V, 3)
	if ok1 != ok2 || !q1.Equal(q2) {
		t.Error("fallback WriteQuorum diverges")
	}
	if layout.Rule().Name() != "fancy" {
		t.Errorf("Rule() = %q", layout.Rule().Name())
	}
	if !layout.Epoch().Equal(V) {
		t.Error("Epoch() != V")
	}
}

// TestLayoutEpochIsolated verifies the compiled layout is decoupled from
// the caller's set: mutating the set passed to Compile must not corrupt
// the layout.
func TestLayoutEpochIsolated(t *testing.T) {
	V := nodeset.Range(0, 9)
	layout := Compile(Grid{}, V)
	before := layout.IsWriteQuorum(nodeset.Range(0, 9))
	V.Remove(0)
	V.Remove(1)
	after := layout.IsWriteQuorum(nodeset.Range(0, 9))
	if !before || !after {
		t.Error("layout affected by caller mutation of the epoch set")
	}
}

// TestCacheReuseAndInvalidate verifies the epoch-keyed cache contract: the
// same (epoch number, member set) pair reuses the compiled layout, any
// change recompiles, and Invalidate forces a recompile.
func TestCacheReuseAndInvalidate(t *testing.T) {
	cache := NewCache(Grid{})
	e5 := nodeset.Range(0, 5)
	l1 := cache.For(7, e5)
	if l2 := cache.For(7, e5); l2 != l1 {
		t.Error("same epoch number and members recompiled")
	}
	// Same number, different members (cannot happen under Lemma 1, but the
	// cache must not serve a stale layout regardless).
	if l3 := cache.For(7, nodeset.Range(0, 4)); l3 == l1 {
		t.Error("different members reused stale layout")
	}
	if l4 := cache.For(8, e5); l4 == l1 {
		t.Error("different epoch number reused stale layout")
	}
	l5 := cache.For(8, e5)
	cache.Invalidate()
	if l6 := cache.For(8, e5); l6 == l5 {
		t.Error("Invalidate did not drop the cached layout")
	}
	// The served layout must be correct for its epoch.
	l := cache.For(9, nodeset.Range(0, 9))
	if !l.IsWriteQuorum(nodeset.Range(0, 9)) {
		t.Error("cached layout gives wrong answer")
	}
}
