package coterie

import "coterie/internal/nodeset"

// Majority is the voting coterie rule with one vote per node (Gifford's
// weighted voting in its simplest configuration, paper Section 1). For a
// node set V of size n it requires
//
//	write quorum: ⌊n/2⌋ + 1 nodes
//	read quorum:  n + 1 − writeQuorum nodes
//
// so any two write quorums intersect and any read quorum intersects any
// write quorum. ReadFraction can skew the split toward cheaper reads: the
// write threshold becomes max(⌊n/2⌋+1, n+1−r) for a read threshold r.
type Majority struct {
	// ReadQuorumSize, if positive, fixes the read threshold for a set of
	// size n to min(ReadQuorumSize, n); the write threshold adjusts to
	// keep the intersection property. Zero selects the balanced split.
	ReadQuorumSize int
}

var _ Rule = Majority{}

// Name implements Rule.
func (m Majority) Name() string { return "majority" }

// Thresholds returns the read and write quorum sizes for a set of n nodes.
func (m Majority) Thresholds(n int) (read, write int) {
	if n <= 0 {
		return 0, 0
	}
	write = n/2 + 1
	read = n + 1 - write
	if m.ReadQuorumSize > 0 {
		read = m.ReadQuorumSize
		if read > n {
			read = n
		}
		if w := n + 1 - read; w > write {
			write = w
		}
	}
	return read, write
}

// IsReadQuorum implements Rule.
func (m Majority) IsReadQuorum(V, S nodeset.Set) bool {
	r, _ := m.Thresholds(V.Len())
	return r > 0 && S.Intersect(V).Len() >= r
}

// IsWriteQuorum implements Rule.
func (m Majority) IsWriteQuorum(V, S nodeset.Set) bool {
	_, w := m.Thresholds(V.Len())
	return w > 0 && S.Intersect(V).Len() >= w
}

// pick returns size members of avail ∩ V starting at a hint-dependent
// offset, wrapping around, for load sharing.
func pickRotated(V, avail nodeset.Set, size, hint int) (nodeset.Set, bool) {
	candidates := avail.Intersect(V).IDs()
	if size <= 0 || len(candidates) < size {
		return nodeset.Set{}, false
	}
	var q nodeset.Set
	start := positiveMod(hint, len(candidates))
	for i := 0; i < size; i++ {
		q.Add(candidates[(start+i)%len(candidates)])
	}
	return q, true
}

// ReadQuorum implements Rule.
func (m Majority) ReadQuorum(V, avail nodeset.Set, hint int) (nodeset.Set, bool) {
	r, _ := m.Thresholds(V.Len())
	return pickRotated(V, avail, r, hint)
}

// WriteQuorum implements Rule.
func (m Majority) WriteQuorum(V, avail nodeset.Set, hint int) (nodeset.Set, bool) {
	_, w := m.Thresholds(V.Len())
	return pickRotated(V, avail, w, hint)
}
