package coterie

import (
	"math"
	"testing"
)

func aliasMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// checkAliasFreqs draws from the table through draw(i) and checks the
// empirical slot frequencies track the requested weights.
func checkAliasFreqs(t *testing.T, weights []float64, draw func(i int) uint64) []int {
	t.Helper()
	a := NewAlias(weights)
	if a.Len() != len(weights) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(weights))
	}
	const draws = 2_000_000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		k := a.Pick(draw(i))
		if k < 0 || k >= len(weights) {
			t.Fatalf("Pick returned out-of-range slot %d", k)
		}
		counts[k]++
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		got := float64(counts[i]) / draws
		want := w / sum
		if math.Abs(got-want) > 0.005 {
			t.Errorf("slot %d: frequency %.4f, want %.4f", i, got, want)
		}
	}
	return counts
}

// TestAliasDistribution samples heavily with full-width uniform draws.
func TestAliasDistribution(t *testing.T) {
	weights := []float64{1, 3, 0.5, 0, 5.5}
	counts := checkAliasFreqs(t, weights, func(i int) uint64 { return aliasMix(uint64(i)) })
	if counts[3] != 0 {
		t.Errorf("zero-weight slot picked %d times", counts[3])
	}
}

// TestAliasDistributionHintShaped drives Pick with the input shape the
// core strategy engine actually produces: hint() returns int(mix64(x)>>1),
// a 63-bit value whose top bit is always zero. Pick must remix such draws
// to full width internally — a coin read straight off the high word would
// only range over half its space, doubling every keep-probability, and
// slots with residence probability >= 0.5 would never remap to their
// alias.
func TestAliasDistributionHintShaped(t *testing.T) {
	weights := []float64{1, 3, 0.5, 0, 5.5}
	checkAliasFreqs(t, weights, func(i int) uint64 {
		return uint64(int(aliasMix(uint64(i)) >> 1))
	})
}

// TestAliasDegenerate covers empty and all-zero weight vectors.
func TestAliasDegenerate(t *testing.T) {
	if got := NewAlias(nil).Pick(12345); got != -1 {
		t.Errorf("empty table Pick = %d, want -1", got)
	}
	a := NewAlias([]float64{0, 0, 0})
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[a.Pick(aliasMix(uint64(i)))]++
	}
	for i, c := range counts {
		if c < 8000 {
			t.Errorf("degenerate table slot %d only picked %d/30000 times (want ~uniform)", i, c)
		}
	}
	// Negative and NaN weights are dropped, not propagated.
	b := NewAlias([]float64{-1, math.NaN(), 2})
	for i := 0; i < 1000; i++ {
		if k := b.Pick(aliasMix(uint64(i))); k != 2 {
			t.Fatalf("Pick = %d, want 2 (only positive slot)", k)
		}
	}
}

// TestAliasEntropy checks the entropy gauge: uniform = log2(n), point = 0.
func TestAliasEntropy(t *testing.T) {
	if h := NewAlias([]float64{1, 1, 1, 1}).Entropy(); math.Abs(h-2) > 1e-9 {
		t.Errorf("uniform-4 entropy = %v, want 2", h)
	}
	if h := NewAlias([]float64{0, 7, 0}).Entropy(); h != 0 {
		t.Errorf("point-mass entropy = %v, want 0", h)
	}
	if h := NewAlias([]float64{0, 0}).Entropy(); math.Abs(h-1) > 1e-9 {
		t.Errorf("degenerate-2 entropy = %v, want 1 (uniform fallback)", h)
	}
}

// TestAliasPickAllocs gates the hot path at zero heap allocations. It is
// wired into `make check-allocs`.
func TestAliasPickAllocs(t *testing.T) {
	a := NewAlias([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	var sink int
	allocs := testing.AllocsPerRun(1000, func() {
		sink += a.Pick(aliasMix(uint64(sink)))
	})
	if allocs != 0 {
		t.Fatalf("Alias.Pick allocates %v times per run, want 0", allocs)
	}
}
