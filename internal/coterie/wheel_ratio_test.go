package coterie

import (
	"math/rand"
	"testing"

	"coterie/internal/nodeset"
)

func TestWheelQuorums(t *testing.T) {
	V := nodeset.Range(0, 5) // hub 0, rim {1,2,3,4}
	w := Wheel{}
	if !w.IsWriteQuorum(V, nodeset.New(0, 3)) {
		t.Error("{hub, rim} not a quorum")
	}
	if w.IsWriteQuorum(V, nodeset.New(0)) {
		t.Error("hub alone is a quorum")
	}
	if w.IsWriteQuorum(V, nodeset.New(1, 2, 3)) {
		t.Error("partial rim is a quorum")
	}
	if !w.IsWriteQuorum(V, nodeset.Range(1, 5)) {
		t.Error("full rim not a quorum")
	}
	// Foreign nodes ignored.
	if w.IsWriteQuorum(V, nodeset.New(0, 100)) {
		t.Error("foreign partner counted")
	}
}

func TestWheelSingleNode(t *testing.T) {
	V := nodeset.New(7)
	w := Wheel{}
	if !w.IsWriteQuorum(V, nodeset.New(7)) {
		t.Error("single node not its own quorum")
	}
	q, ok := w.WriteQuorum(V, V, 0)
	if !ok || !q.Equal(V) {
		t.Errorf("quorum = %v, %v", q, ok)
	}
}

func TestWheelConstruction(t *testing.T) {
	V := nodeset.Range(0, 6)
	w := Wheel{}
	// Common case: hub + one partner, rotating with hint.
	seen := map[string]bool{}
	for hint := 0; hint < 5; hint++ {
		q, ok := w.WriteQuorum(V, V, hint)
		if !ok || q.Len() != 2 || !q.Contains(0) {
			t.Fatalf("hint %d: quorum %v, %v", hint, q, ok)
		}
		seen[q.String()] = true
	}
	if len(seen) != 5 {
		t.Errorf("hints reached %d distinct partners, want 5", len(seen))
	}
	// Hub down: full rim.
	avail := V.Clone()
	avail.Remove(0)
	q, ok := w.WriteQuorum(V, avail, 0)
	if !ok || !q.Equal(avail) {
		t.Errorf("hub-down quorum = %v, %v", q, ok)
	}
	// Hub down plus one rim member down: nothing.
	avail.Remove(3)
	if _, ok := w.WriteQuorum(V, avail, 0); ok {
		t.Error("quorum with hub and a rim member down")
	}
}

func TestWheelIntersectionAndConstructionProperties(t *testing.T) {
	for n := 1; n <= 9; n++ {
		V := nodeset.Range(0, nodeset.ID(n))
		if err := CheckIntersection(Wheel{}, V); err != nil {
			t.Errorf("N=%d: %v", n, err)
		}
	}
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(12)
		V := nodeset.Range(0, nodeset.ID(n))
		var avail nodeset.Set
		for _, id := range V.IDs() {
			if r.Intn(100) < 70 {
				avail.Add(id)
			}
		}
		if err := CheckConstruction(Wheel{}, V, avail, r.Int()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDefineGridRatio(t *testing.T) {
	cases := []struct {
		n       int
		k       float64
		m, cols int
	}{
		{16, 1, 4, 4},
		{16, 4, 8, 2},    // tall: cheap reads (2 columns)
		{16, 0.25, 2, 8}, // wide: cheap writes per column
		{16, 100, 16, 1}, // degenerate: a single column = ROWA-for-writes
		{9, 1, 3, 3},
		{5, 2, 3, 2},
	}
	for _, c := range cases {
		g := DefineGridRatio(c.n, c.k)
		if g.M != c.m || g.N != c.cols {
			t.Errorf("DefineGridRatio(%d, %g) = %v, want %dx%d", c.n, c.k, g, c.m, c.cols)
		}
		if g.Positions() != c.n {
			t.Errorf("DefineGridRatio(%d, %g): positions %d", c.n, c.k, g.Positions())
		}
	}
	// k <= 0 falls back to the near-square rule.
	if DefineGridRatio(9, 0) != DefineGrid(9) {
		t.Error("k=0 fallback broken")
	}
	if DefineGridRatio(0, 1) != (GridShape{}) {
		t.Error("n=0 not zero shape")
	}
}

func TestColumnHeightGeneralShapes(t *testing.T) {
	// 16 nodes at k=4: 8x2 grid, columns of 8 each.
	g := DefineGridRatio(16, 4)
	if g.ColumnHeight(1) != 8 || g.ColumnHeight(2) != 8 {
		t.Errorf("8x2 heights = %d,%d", g.ColumnHeight(1), g.ColumnHeight(2))
	}
	// 5 nodes at k=2: 3x2 with one gap; col 1 holds rows 1..3 (nodes 1,3,5),
	// col 2 holds nodes 2,4.
	g = DefineGridRatio(5, 2)
	if g.ColumnHeight(1) != 3 || g.ColumnHeight(2) != 2 {
		t.Errorf("3x2(-1) heights = %d,%d", g.ColumnHeight(1), g.ColumnHeight(2))
	}
	// Sum of heights equals the node count for many shapes.
	for _, n := range []int{3, 7, 12, 20} {
		for _, k := range []float64{0.3, 1, 2.5, 6} {
			g := DefineGridRatio(n, k)
			total := 0
			for j := 1; j <= g.N; j++ {
				total += g.ColumnHeight(j)
			}
			if total != n {
				t.Errorf("n=%d k=%g: heights sum to %d", n, k, total)
			}
		}
	}
}

func TestRatioGridIntersection(t *testing.T) {
	for _, k := range []float64{0.25, 0.5, 2, 4} {
		for n := 1; n <= 10; n++ {
			V := nodeset.Range(0, nodeset.ID(n))
			if err := CheckIntersection(Grid{Ratio: k}, V); err != nil {
				t.Errorf("k=%g N=%d: %v", k, n, err)
			}
		}
	}
}

func TestRatioGridConstruction(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(16)
		k := []float64{0.25, 0.5, 2, 4}[r.Intn(4)]
		V := nodeset.Range(0, nodeset.ID(n))
		var avail nodeset.Set
		for _, id := range V.IDs() {
			if r.Intn(100) < 75 {
				avail.Add(id)
			}
		}
		if err := CheckConstruction(Grid{Ratio: k}, V, avail, r.Int()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRatioTradesReadCostForWriteAvailability pins the paper's Section 5
// claim: "Increasing k, one makes reads more efficient and writes less
// available." Read quorums shrink with k (fewer columns); the probability
// that some column is fully up — the write quorum's hard part — falls as
// columns get taller. (Write quorum *size* is symmetric in k and minimal
// at the square, which is why the paper keeps k near 1.)
func TestRatioTradesReadCostForWriteAvailability(t *testing.T) {
	const n, p = 36, 0.9
	// P(at least one column fully up), columns independent.
	fullColumnProb := func(shape GridShape) float64 {
		noneFull := 1.0
		for j := 1; j <= shape.N; j++ {
			q := 1.0
			for i := 0; i < shape.ColumnHeight(j); i++ {
				q *= p
			}
			noneFull *= 1 - q
		}
		return 1 - noneFull
	}
	V := nodeset.Range(0, nodeset.ID(n))
	prevRead := 1 << 30
	prevFull := 2.0
	for _, k := range []float64{0.25, 1, 4, 16} {
		g := Grid{Ratio: k}
		rq, ok := g.ReadQuorum(V, V, 0)
		if !ok {
			t.Fatalf("k=%g: no read quorum", k)
		}
		if rq.Len() > prevRead {
			t.Errorf("k=%g: read quorum grew to %d", k, rq.Len())
		}
		fc := fullColumnProb(DefineGridRatio(n, k))
		if fc > prevFull {
			t.Errorf("k=%g: full-column probability rose to %g", k, fc)
		}
		prevRead, prevFull = rq.Len(), fc
	}
}
