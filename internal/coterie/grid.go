package coterie

import (
	"fmt"
	"math"
	"strings"

	"coterie/internal/nodeset"
)

// GridShape describes the logical rectangular grid imposed on an ordered
// node set: M rows, N columns, and B unoccupied positions. The unoccupied
// positions are the row-major tail of the grid — for DefineGrid's
// near-square shapes that is the right-justified end of the bottom row
// (B < N, paper Section 5); DefineGridRatio's elongated shapes may leave
// larger tails.
type GridShape struct {
	M int // rows
	N int // columns
	B int // unoccupied positions
}

// DefineGrid computes the grid dimensions for n nodes following the paper's
// DefineGrid subroutine: m and n differ by at most one, m ≤ n (between
// n×(n+1) and (n+1)×n the rule chooses the former), and m·n ≥ N with the
// excess B = m·n − N < n.
func DefineGrid(n int) GridShape {
	if n <= 0 {
		return GridShape{}
	}
	root := math.Sqrt(float64(n))
	m := int(math.Floor(root))
	// Guard against floating-point error for perfect squares, e.g. if
	// Sqrt(k*k) evaluated to k-ε the floor would come out low.
	if (m+1)*(m+1) <= n {
		m++
	}
	cols := int(math.Ceil(root))
	if cols*cols < n {
		cols++
	}
	if m*cols < n {
		m++
	}
	return GridShape{M: m, N: cols, B: m*cols - n}
}

// ColumnHeight returns the number of physical nodes in column j (1-based).
// Nodes fill the grid row-major, so the unoccupied positions are the tail:
// with n = M·N−B occupied positions, column j holds ⌊(n−j)/N⌋+1 of them.
// For the near-square shapes of DefineGrid this is M or M−1 (the
// right-justified bottom-row gap); the formula also covers the elongated
// shapes of DefineGridRatio, where whole trailing rows may be partial.
func (g GridShape) ColumnHeight(j int) int {
	if j < 1 || j > g.N {
		return 0
	}
	n := g.Positions()
	if j > n {
		return 0
	}
	return (n-j)/g.N + 1
}

// Positions returns the total number of physical positions, i.e. the node
// count the shape was derived from.
func (g GridShape) Positions() int { return g.M*g.N - g.B }

func (g GridShape) String() string {
	if g.B == 0 {
		return fmt.Sprintf("%dx%d", g.M, g.N)
	}
	return fmt.Sprintf("%dx%d(-%d)", g.M, g.N, g.B)
}

// DefineGridRatio computes grid dimensions targeting the aspect parameter
// k ≈ rows/columns (paper, Section 5, requirement 2). The column count is
// the nearest integer to √(n/k) (clamped to [1, n]) and rows follow as
// ⌈n/columns⌉; unoccupied positions trail in row-major order.
func DefineGridRatio(n int, k float64) GridShape {
	if n <= 0 {
		return GridShape{}
	}
	if k <= 0 {
		return DefineGrid(n)
	}
	cols := int(math.Round(math.Sqrt(float64(n) / k)))
	if cols < 1 {
		cols = 1
	}
	if cols > n {
		cols = n
	}
	rows := (n + cols - 1) / cols
	return GridShape{M: rows, N: cols, B: rows*cols - n}
}

// Grid is the grid coterie rule (paper, Section 5). The nodes of V are
// arranged row-major into the grid returned by DefineGrid(|V|): the k-th
// node of V in increasing name order (k starting at 1) occupies row
// ⌊(k−1)/n⌋+1, column ((k−1) mod n)+1.
//
// A read quorum is a set covering every column. A write quorum additionally
// covers completely the physical nodes of some column. With Strict set, a
// full column means all M positions including unoccupied ones — the
// pre-optimization rule the paper's availability analysis assumes for the
// N = 3 grid (Figure 2); the default follows the paper's IsWriteQuorum
// pseudo-code, which only requires the physical part of a column (the
// Neuman optimization acknowledged at the end of the paper).
//
// Ratio, when positive, is the paper's aspect parameter k ≈ m/n
// (Section 5, requirement 2): larger values build taller grids with fewer
// columns, making reads cheaper (a read costs one node per column) at the
// price of bigger write quorums and lower write availability. Zero keeps
// the paper's near-square DefineGrid. All nodes must configure the same
// Ratio — it is part of the coterie rule the epoch mechanism assumes
// everyone agrees on.
type Grid struct {
	// Strict disables the partial-column optimization: columns shortened
	// by unoccupied positions can never be "fully covered".
	Strict bool
	// Ratio selects the target m/n aspect; 0 means near-square.
	Ratio float64
}

var _ Rule = Grid{}

// Name implements Rule.
func (g Grid) Name() string {
	if g.Strict {
		return "grid-strict"
	}
	return "grid"
}

// shape returns the grid dimensions this rule imposes on n nodes.
func (g Grid) shape(n int) GridShape {
	if g.Ratio > 0 {
		return DefineGridRatio(n, g.Ratio)
	}
	return DefineGrid(n)
}

// Position returns the 1-based (row, column) of id within the grid over V,
// or ok=false if id ∉ V.
func (g Grid) Position(V nodeset.Set, id nodeset.ID) (row, col int, ok bool) {
	k, ok := V.OrderedNumber(id)
	if !ok {
		return 0, 0, false
	}
	shape := g.shape(V.Len())
	return (k-1)/shape.N + 1, (k-1)%shape.N + 1, true
}

// columnCover computes, for S ∩ V, how many distinct columns are
// represented and per-column how many distinct rows are covered.
func (g Grid) columnCover(V, S nodeset.Set) (shape GridShape, covered []int) {
	shape = g.shape(V.Len())
	covered = make([]int, shape.N+1) // 1-based; covered[j] = rows of col j present
	posSeen := make(map[int]bool)    // keyed by the position index k itself
	for _, id := range S.Intersect(V).IDs() {
		k, _ := V.OrderedNumber(id)
		if !posSeen[k] {
			posSeen[k] = true
			covered[(k-1)%shape.N+1]++
		}
	}
	return shape, covered
}

// IsReadQuorum implements Rule: S includes a read quorum over V iff S has a
// representative in every column of the grid.
func (g Grid) IsReadQuorum(V, S nodeset.Set) bool {
	if V.Empty() {
		return false
	}
	shape, covered := g.columnCover(V, S)
	for j := 1; j <= shape.N; j++ {
		if covered[j] == 0 {
			return false
		}
	}
	return true
}

// IsWriteQuorum implements Rule: S includes a write quorum over V iff S
// covers every column and fully covers some column.
func (g Grid) IsWriteQuorum(V, S nodeset.Set) bool {
	if V.Empty() {
		return false
	}
	shape, covered := g.columnCover(V, S)
	fullCol := false
	for j := 1; j <= shape.N; j++ {
		if covered[j] == 0 {
			return false
		}
		need := shape.M
		if !g.Strict {
			need = shape.ColumnHeight(j)
		}
		if need > 0 && covered[j] >= need {
			fullCol = true
		}
	}
	return fullCol
}

// columnMembers returns the members of V in column j (1-based), top to
// bottom, restricted to avail.
func (g Grid) columnMembers(V, avail nodeset.Set, shape GridShape, j int) []nodeset.ID {
	var out []nodeset.ID
	for i := 1; i <= shape.M; i++ {
		k := (i-1)*shape.N + j
		if k > V.Len() {
			break
		}
		id, ok := V.Nth(k)
		if !ok {
			break
		}
		if avail.Contains(id) {
			out = append(out, id)
		}
	}
	return out
}

// ReadQuorum implements Rule: it picks one available node per column,
// rotating the starting row by hint for load sharing.
func (g Grid) ReadQuorum(V, avail nodeset.Set, hint int) (nodeset.Set, bool) {
	if V.Empty() {
		return nodeset.Set{}, false
	}
	shape := g.shape(V.Len())
	var q nodeset.Set
	for j := 1; j <= shape.N; j++ {
		members := g.columnMembers(V, avail, shape, j)
		if len(members) == 0 {
			return nodeset.Set{}, false
		}
		q.Add(members[positiveMod(hint+j, len(members))])
	}
	return q, true
}

// WriteQuorum implements Rule: it selects a fully available column —
// starting the search at a hint-dependent column for load sharing — plus a
// representative of every other column.
func (g Grid) WriteQuorum(V, avail nodeset.Set, hint int) (nodeset.Set, bool) {
	if V.Empty() {
		return nodeset.Set{}, false
	}
	shape := g.shape(V.Len())
	cover, ok := g.ReadQuorum(V, avail, hint)
	if !ok {
		return nodeset.Set{}, false
	}
	for dj := 0; dj < shape.N; dj++ {
		j := positiveMod(hint+dj, shape.N) + 1
		need := shape.M
		if !g.Strict {
			need = shape.ColumnHeight(j)
		}
		if need == 0 {
			continue
		}
		members := g.columnMembers(V, avail, shape, j)
		if len(members) == need {
			q := cover.Clone()
			for _, id := range members {
				q.Add(id)
			}
			return q, true
		}
	}
	return nodeset.Set{}, false
}

// Render draws the grid over V as ASCII art, marking unoccupied positions
// with "--". It reproduces the layouts of the paper's Figures 1 and 2.
func (g Grid) Render(V nodeset.Set) string {
	shape := g.shape(V.Len())
	var b strings.Builder
	fmt.Fprintf(&b, "grid %s over %d nodes\n", shape, V.Len())
	width := 0
	for _, id := range V.IDs() {
		if l := len(id.String()); l > width {
			width = l
		}
	}
	for i := 1; i <= shape.M; i++ {
		for j := 1; j <= shape.N; j++ {
			k := (i-1)*shape.N + j
			if j > 1 {
				b.WriteByte(' ')
			}
			if id, ok := V.Nth(k); ok {
				fmt.Fprintf(&b, "%*s", width, id.String())
			} else {
				fmt.Fprintf(&b, "%*s", width, "--")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
