package coterie

import (
	"sync"
	"testing"

	"coterie/internal/nodeset"
)

// TestCacheConcurrentFor hammers the lock-free cache from many goroutines
// mixing hits, epoch changes and invalidations; every returned layout must
// match the epoch it was requested for.
func TestCacheConcurrentFor(t *testing.T) {
	c := NewCache(Majority{})
	epochs := []nodeset.Set{
		nodeset.Range(0, 5),
		nodeset.Range(0, 7),
		nodeset.Range(2, 9),
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (i + w) % len(epochs)
				lay := c.For(uint64(k), epochs[k])
				if !lay.Epoch().Equal(epochs[k]) {
					t.Errorf("layout for epoch %d compiled over %v", k, lay.Epoch())
					return
				}
				if w == 0 && i%100 == 0 {
					c.Invalidate()
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestCacheHitReturnsSamePointer: repeated lookups of the current epoch
// must reuse the compiled layout, not recompile.
func TestCacheHitReturnsSamePointer(t *testing.T) {
	c := NewCache(Majority{})
	e := nodeset.Range(0, 5)
	first := c.For(7, e)
	for i := 0; i < 10; i++ {
		if c.For(7, e) != first {
			t.Fatal("cache hit recompiled the layout")
		}
	}
	c.Invalidate()
	if c.For(7, e) == first {
		t.Fatal("Invalidate did not drop the cached layout")
	}
}
