package coterie

import "coterie/internal/nodeset"

// Wheel is the wheel coterie: the lowest-named node of V is the hub and
// the rest form the rim. Quorums are {hub, any one rim node} or the entire
// rim. Any two quorums intersect: two hub quorums share the hub, a hub
// quorum and the rim share the rim member, and the rim shares itself.
//
// The wheel gives the smallest quorums of any coterie (2 nodes in the
// common case, independent of N) but concentrates every operation on the
// hub; the full-rim quorum is the escape hatch when the hub is down. It is
// included as a contrast point for the load-sharing and availability
// experiments: the grid pays ~√N-node quorums for hub-free load spreading,
// the wheel pays a hub bottleneck for constant-size quorums. Under the
// epoch mechanism the hub role migrates automatically — after an epoch
// change the new epoch's lowest-named member is the hub.
//
// Read and write quorums coincide (the wheel is a symmetric coterie).
type Wheel struct{}

var _ Rule = Wheel{}

// Name implements Rule.
func (Wheel) Name() string { return "wheel" }

// hubAndRim splits V; ok is false for empty V.
func (Wheel) hubAndRim(V nodeset.Set) (hub nodeset.ID, rim nodeset.Set, ok bool) {
	hub, ok = V.Min()
	if !ok {
		return 0, nodeset.Set{}, false
	}
	rim = V.Clone()
	rim.Remove(hub)
	return hub, rim, true
}

// isQuorum reports whether S includes a wheel quorum over V.
func (w Wheel) isQuorum(V, S nodeset.Set) bool {
	hub, rim, ok := w.hubAndRim(V)
	if !ok {
		return false
	}
	s := S.Intersect(V)
	if rim.Empty() {
		// Single-node universe: the hub alone is the quorum.
		return s.Contains(hub)
	}
	if s.Contains(hub) && s.Intersects(rim) {
		return true
	}
	return rim.Subset(s)
}

// IsReadQuorum implements Rule.
func (w Wheel) IsReadQuorum(V, S nodeset.Set) bool { return w.isQuorum(V, S) }

// IsWriteQuorum implements Rule.
func (w Wheel) IsWriteQuorum(V, S nodeset.Set) bool { return w.isQuorum(V, S) }

// quorum constructs a quorum from avail ∩ V, rotating the rim partner by
// hint. The full-rim fallback covers hub failures.
func (w Wheel) quorum(V, avail nodeset.Set, hint int) (nodeset.Set, bool) {
	hub, rim, ok := w.hubAndRim(V)
	if !ok {
		return nodeset.Set{}, false
	}
	a := avail.Intersect(V)
	if rim.Empty() {
		if a.Contains(hub) {
			return nodeset.New(hub), true
		}
		return nodeset.Set{}, false
	}
	if a.Contains(hub) {
		rimAvail := a.Intersect(rim).IDs()
		if len(rimAvail) > 0 {
			partner := rimAvail[positiveMod(hint, len(rimAvail))]
			return nodeset.New(hub, partner), true
		}
	}
	if rim.Subset(a) {
		return rim.Clone(), true
	}
	return nodeset.Set{}, false
}

// ReadQuorum implements Rule.
func (w Wheel) ReadQuorum(V, avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return w.quorum(V, avail, hint)
}

// WriteQuorum implements Rule.
func (w Wheel) WriteQuorum(V, avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return w.quorum(V, avail, hint)
}
