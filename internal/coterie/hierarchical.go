package coterie

import "coterie/internal/nodeset"

// Hierarchical is Kumar's hierarchical quorum consensus (paper, reference
// [10]) — the other structured coterie protocol the paper cites. The nodes
// of V, in increasing name order, are the leaves of a balanced tree with
// branching factor Degree (default 3); at each internal node the leaf range
// splits into near-equal contiguous parts. A quorum at an internal node is
// a majority of child quorums; a quorum at a leaf is the leaf's node.
//
// Read and write quorums coincide in basic HQC; for |V| = 3^k the quorum
// size is |V|^0.63, between the grid's √N reads and 2√N−1 writes. Because
// majorities of majorities intersect level by level, any two quorums
// intersect, so the rule forms a coterie.
type Hierarchical struct {
	// Degree is the branching factor; values < 2 select the default of 3.
	Degree int
}

var _ Rule = Hierarchical{}

// Name implements Rule.
func (h Hierarchical) Name() string { return "hierarchical" }

func (h Hierarchical) degree() int {
	if h.Degree < 2 {
		return 3
	}
	return h.Degree
}

// children splits the leaf range [lo, hi) into at most Degree near-equal
// contiguous parts and returns their boundaries.
func (h Hierarchical) children(lo, hi int) []int {
	n := hi - lo
	d := h.degree()
	if d > n {
		d = n
	}
	bounds := make([]int, 0, d+1)
	for c := 0; c <= d; c++ {
		bounds = append(bounds, lo+c*n/d)
	}
	return bounds
}

// hasQuorum reports whether present (indexed by leaf position) contains a
// quorum of the subtree spanning leaf positions [lo, hi).
func (h Hierarchical) hasQuorum(present []bool, lo, hi int) bool {
	if hi-lo == 1 {
		return present[lo]
	}
	bounds := h.children(lo, hi)
	k := len(bounds) - 1
	got := 0
	for c := 0; c < k; c++ {
		if h.hasQuorum(present, bounds[c], bounds[c+1]) {
			got++
		}
	}
	return got >= k/2+1
}

// IsReadQuorum implements Rule.
func (h Hierarchical) IsReadQuorum(V, S nodeset.Set) bool {
	n := V.Len()
	if n == 0 {
		return false
	}
	present := make([]bool, n)
	for _, id := range S.Intersect(V).IDs() {
		k, _ := V.OrderedNumber(id)
		present[k-1] = true
	}
	return h.hasQuorum(present, 0, n)
}

// IsWriteQuorum implements Rule. Basic HQC uses the same quorums for reads
// and writes.
func (h Hierarchical) IsWriteQuorum(V, S nodeset.Set) bool {
	return h.IsReadQuorum(V, S)
}

// buildQuorum assembles a quorum of the subtree [lo, hi) from available
// leaves, rotating child preference by hint for load sharing. It appends
// chosen leaf positions to q and reports success. Because it tries every
// child, it finds a quorum exactly when one exists.
func (h Hierarchical) buildQuorum(avail []bool, lo, hi, hint int, q *[]int) bool {
	if hi-lo == 1 {
		if !avail[lo] {
			return false
		}
		*q = append(*q, lo)
		return true
	}
	bounds := h.children(lo, hi)
	k := len(bounds) - 1
	need := k/2 + 1
	got := 0
	for i := 0; i < k && got < need; i++ {
		c := positiveMod(hint+i, k)
		mark := len(*q)
		if h.buildQuorum(avail, bounds[c], bounds[c+1], hint/k, q) {
			got++
		} else {
			*q = (*q)[:mark]
		}
	}
	return got >= need
}

// quorum constructs a concrete quorum from avail ∩ V.
func (h Hierarchical) quorum(V, avail nodeset.Set, hint int) (nodeset.Set, bool) {
	n := V.Len()
	if n == 0 {
		return nodeset.Set{}, false
	}
	leaves := make([]bool, n)
	for _, id := range avail.Intersect(V).IDs() {
		k, _ := V.OrderedNumber(id)
		leaves[k-1] = true
	}
	var picks []int
	if !h.buildQuorum(leaves, 0, n, hint, &picks) {
		return nodeset.Set{}, false
	}
	var q nodeset.Set
	for _, p := range picks {
		id, _ := V.Nth(p + 1)
		q.Add(id)
	}
	return q, true
}

// ReadQuorum implements Rule.
func (h Hierarchical) ReadQuorum(V, avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return h.quorum(V, avail, hint)
}

// WriteQuorum implements Rule.
func (h Hierarchical) WriteQuorum(V, avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return h.quorum(V, avail, hint)
}
