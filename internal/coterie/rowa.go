package coterie

import "coterie/internal/nodeset"

// ROWA is the read-one/write-all coterie rule: any single node is a read
// quorum and only the full set V is a write quorum. It gives the cheapest
// possible reads but makes the data item unavailable for update after a
// single failure — the paper (Section 2) notes the epoch mechanism is not
// suited to this discipline because one failure then blocks the epoch
// change itself; it is included as a baseline for the message-cost and
// availability comparisons.
type ROWA struct{}

var _ Rule = ROWA{}

// Name implements Rule.
func (ROWA) Name() string { return "rowa" }

// IsReadQuorum implements Rule.
func (ROWA) IsReadQuorum(V, S nodeset.Set) bool {
	return !V.Empty() && S.Intersects(V)
}

// IsWriteQuorum implements Rule.
func (ROWA) IsWriteQuorum(V, S nodeset.Set) bool {
	return !V.Empty() && V.Subset(S)
}

// ReadQuorum implements Rule.
func (ROWA) ReadQuorum(V, avail nodeset.Set, hint int) (nodeset.Set, bool) {
	return pickRotated(V, avail, 1, hint)
}

// WriteQuorum implements Rule.
func (ROWA) WriteQuorum(V, avail nodeset.Set, hint int) (nodeset.Set, bool) {
	if V.Empty() || !V.Subset(avail) {
		return nodeset.Set{}, false
	}
	return V.Clone(), true
}
