package coterie

import (
	"sync"
	"sync/atomic"

	"coterie/internal/nodeset"
)

// cacheEntry pairs a compiled layout with the epoch number it was compiled
// for. Entries are immutable once published.
type cacheEntry struct {
	epochNum uint64
	layout   *Layout
}

// Cache memoizes the compiled Layout of the current epoch.
//
// The invalidation rule is the one the epoch mechanism gives for free: a
// layout is valid exactly as long as its epoch number. Epoch numbers
// increase monotonically per data item and the current epoch is unique
// (paper, Lemma 1), so an equal (number, member-set) pair identifies the
// same logical structure and the cached layout can be reused; any other
// pair recompiles. The cache keeps the latest epoch only — protocols
// evaluate quorums almost exclusively against the current epoch, and a
// stale-epoch lookup is a one-off recompile, not a correctness hazard.
//
// A Cache is safe for concurrent use. Hits are lock-free: the current
// entry is published through an atomic pointer, so the data-plane fast
// path (every quorum evaluation of every operation) reads a memoized
// layout without serializing coordinators behind a mutex. Misses take a
// mutex only to avoid redundant concurrent compiles; a racing reader that
// observes the old entry simply compiles once more — layouts are
// immutable, so either result is correct.
type Cache struct {
	rule Rule

	cur       atomic.Pointer[cacheEntry]
	compileMu sync.Mutex
}

// NewCache returns an empty cache compiling layouts of rule.
func NewCache(rule Rule) *Cache {
	return &Cache{rule: rule}
}

// Rule returns the rule whose layouts the cache compiles.
func (c *Cache) Rule() Rule { return c.rule }

// For returns the compiled layout of the given epoch, reusing the cached
// one when both the epoch number and the member set match.
func (c *Cache) For(epochNum uint64, epoch nodeset.Set) *Layout {
	if e := c.cur.Load(); e != nil && e.epochNum == epochNum && e.layout.Epoch().Equal(epoch) {
		return e.layout
	}
	c.compileMu.Lock()
	defer c.compileMu.Unlock()
	// Re-check: another goroutine may have compiled this epoch while we
	// waited for the mutex.
	if e := c.cur.Load(); e != nil && e.epochNum == epochNum && e.layout.Epoch().Equal(epoch) {
		return e.layout
	}
	layout := Compile(c.rule, epoch)
	c.cur.Store(&cacheEntry{epochNum: epochNum, layout: layout})
	return layout
}

// Invalidate drops the cached layout, forcing the next For to recompile.
func (c *Cache) Invalidate() {
	c.cur.Store(nil)
}
