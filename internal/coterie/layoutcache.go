package coterie

import (
	"sync"

	"coterie/internal/nodeset"
)

// Cache memoizes the compiled Layout of the current epoch.
//
// The invalidation rule is the one the epoch mechanism gives for free: a
// layout is valid exactly as long as its epoch number. Epoch numbers
// increase monotonically per data item and the current epoch is unique
// (paper, Lemma 1), so an equal (number, member-set) pair identifies the
// same logical structure and the cached layout can be reused; any other
// pair recompiles. The cache keeps the latest epoch only — protocols
// evaluate quorums almost exclusively against the current epoch, and a
// stale-epoch lookup is a one-off recompile, not a correctness hazard.
//
// A Cache is safe for concurrent use.
type Cache struct {
	rule Rule

	mu       sync.Mutex
	valid    bool
	epochNum uint64
	layout   *Layout
}

// NewCache returns an empty cache compiling layouts of rule.
func NewCache(rule Rule) *Cache {
	return &Cache{rule: rule}
}

// Rule returns the rule whose layouts the cache compiles.
func (c *Cache) Rule() Rule { return c.rule }

// For returns the compiled layout of the given epoch, reusing the cached
// one when both the epoch number and the member set match.
func (c *Cache) For(epochNum uint64, epoch nodeset.Set) *Layout {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.valid && c.epochNum == epochNum && c.layout.Epoch().Equal(epoch) {
		return c.layout
	}
	c.layout = Compile(c.rule, epoch)
	c.epochNum = epochNum
	c.valid = true
	return c.layout
}

// Invalidate drops the cached layout, forcing the next For to recompile.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	c.valid = false
	c.layout = nil
	c.mu.Unlock()
}
