package coterie

import (
	"fmt"

	"coterie/internal/nodeset"
)

// CheckIntersection exhaustively verifies the coterie intersection
// properties of a rule over V: no two disjoint sets may both include write
// quorums, and no read quorum may be disjoint from a write quorum. Because
// the quorum predicates are monotone, it suffices to check every subset S
// of V against its complement V∖S. The check is exponential in |V| and is
// intended for tests with |V| ≲ 16.
func CheckIntersection(r Rule, V nodeset.Set) error {
	ids := V.IDs()
	n := len(ids)
	if n > 24 {
		return fmt.Errorf("coterie: CheckIntersection limited to 24 nodes, got %d", n)
	}
	for mask := 0; mask < 1<<n; mask++ {
		var s nodeset.Set
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s.Add(ids[i])
			}
		}
		comp := V.Diff(s)
		if r.IsWriteQuorum(V, s) && r.IsWriteQuorum(V, comp) {
			return fmt.Errorf("coterie %s: disjoint write quorums within %v and %v", r.Name(), s, comp)
		}
		if r.IsReadQuorum(V, s) && r.IsWriteQuorum(V, comp) {
			return fmt.Errorf("coterie %s: read quorum %v disjoint from write quorum in %v", r.Name(), s, comp)
		}
	}
	return nil
}

// CheckMonotone verifies on random supersets that the quorum predicates are
// monotone: if S includes a quorum, so does any superset. The protocols
// depend on monotonicity — a coordinator that collects more responses than
// a minimal quorum must still be recognized as holding one.
func CheckMonotone(r Rule, V, S nodeset.Set) error {
	if !S.Subset(V) {
		S = S.Intersect(V)
	}
	grown := S.Union(V) // maximal superset within V
	if r.IsReadQuorum(V, S) && !r.IsReadQuorum(V, grown) {
		return fmt.Errorf("coterie %s: read predicate not monotone at %v", r.Name(), S)
	}
	if r.IsWriteQuorum(V, S) && !r.IsWriteQuorum(V, grown) {
		return fmt.Errorf("coterie %s: write predicate not monotone at %v", r.Name(), S)
	}
	return nil
}

// CheckConstruction verifies that the quorums a rule constructs from avail
// actually satisfy the corresponding predicates and stay within avail ∩ V.
func CheckConstruction(r Rule, V, avail nodeset.Set, hint int) error {
	if q, ok := r.ReadQuorum(V, avail, hint); ok {
		if !q.Subset(avail.Intersect(V)) {
			return fmt.Errorf("coterie %s: read quorum %v escapes avail∩V", r.Name(), q)
		}
		if !r.IsReadQuorum(V, q) {
			return fmt.Errorf("coterie %s: constructed read quorum %v rejected by predicate", r.Name(), q)
		}
	} else if r.IsReadQuorum(V, avail) {
		return fmt.Errorf("coterie %s: read quorum exists in %v but construction failed", r.Name(), avail)
	}
	if q, ok := r.WriteQuorum(V, avail, hint); ok {
		if !q.Subset(avail.Intersect(V)) {
			return fmt.Errorf("coterie %s: write quorum %v escapes avail∩V", r.Name(), q)
		}
		if !r.IsWriteQuorum(V, q) {
			return fmt.Errorf("coterie %s: constructed write quorum %v rejected by predicate", r.Name(), q)
		}
	} else if r.IsWriteQuorum(V, avail) {
		return fmt.Errorf("coterie %s: write quorum exists in %v but construction failed", r.Name(), avail)
	}
	return nil
}
