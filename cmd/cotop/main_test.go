package main

import (
	"bytes"
	"strings"
	"testing"

	"coterie/internal/capi"
	"coterie/internal/obs"
	"coterie/internal/obs/expose"
)

// nodeSnapshot renders a registry the way a daemon's admin endpoint would
// and parses it back through the scraper — the exposition half of the
// round trip, minus the socket.
func nodeSnapshot(t *testing.T, addr string, r *obs.Registry) capi.NodeSnapshot {
	t.Helper()
	var buf bytes.Buffer
	if err := expose.WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	ns, err := capi.ParseSnapshot(addr, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return *ns
}

// TestSummaryRendersMergedStrategyVectors drives the full merge round
// trip for the weighted-strategy vector metrics: two daemons expose
// per-candidate pick counters, per-node capacity gauges and load-EWMA
// cells, the cluster merge sums them element-wise, and the summary view
// renders the summed cells as index:value pairs.
func TestSummaryRendersMergedStrategyVectors(t *testing.T) {
	r1, r2 := obs.New(), obs.New()
	r1.CounterVec("core_strategy_read_pick_total").At(0).Add(30)
	r1.CounterVec("core_strategy_read_pick_total").At(2).Add(5)
	r2.CounterVec("core_strategy_read_pick_total").At(0).Add(12)
	r1.CounterVec("core_strategy_write_pick_total").At(1).Add(8)
	// Both daemons publish the same declared capacity map; the merged
	// cell is the cluster sum (2 nodes x 100 milli).
	r1.GaugeVec("core_node_capacity_milli").At(4).Set(100)
	r2.GaugeVec("core_node_capacity_milli").At(4).Set(100)
	r1.GaugeVec("core_endpoint_load_ewma").At(1).Set(7)
	r1.GaugeVec("core_strategy_entropy_milli").At(0).Set(2100)
	r1.Gauge("core_strategy_capacity_milli").Set(5400)
	r1.Counter("core_reads_total").Add(3)

	cs := capi.MergeNodes([]capi.NodeSnapshot{
		nodeSnapshot(t, "a:9100", r1),
		nodeSnapshot(t, "b:9100", r2),
	})

	var out bytes.Buffer
	printSummary(&out, cs)
	got := out.String()

	for _, want := range []string{
		"counter vectors (cluster sum, index:value):",
		"gauge vectors (cluster sum, index:value):",
		"gauges (cluster sum):",
		"0:42 2:5", // read picks summed across both daemons
		"1:8",      // write picks from the single daemon that had any
		"4:200",    // capacity cells summed node-wise
		"1:7",      // load EWMA passes through
		"0:2100",   // read-distribution entropy
		"5400",     // predicted capacity gauge
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	for _, name := range []string{
		"core_strategy_read_pick_total",
		"core_strategy_write_pick_total",
		"core_node_capacity_milli",
		"core_endpoint_load_ewma",
		"core_strategy_entropy_milli",
	} {
		if !strings.Contains(got, name) {
			t.Errorf("summary missing vector %q:\n%s", name, got)
		}
	}
}

// TestFmtVec pins the rendering contract: zero cells are skipped, an
// all-zero vector renders empty (and so stays off the summary screen).
func TestFmtVec(t *testing.T) {
	if got := fmtVec([]uint64{0, 3, 0, 9}); got != "1:3 3:9" {
		t.Fatalf("fmtVec = %q", got)
	}
	if got := fmtVec([]int64{-2, 0}); got != "0:-2" {
		t.Fatalf("fmtVec = %q", got)
	}
	if got := fmtVec([]uint64{0, 0}); got != "" {
		t.Fatalf("fmtVec all-zero = %q", got)
	}
}
