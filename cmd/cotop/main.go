// Command cotop is the cluster-wide observability aggregator: it scrapes
// every daemon's admin endpoint (coteried -admin), merges the per-node
// registries into one cluster view, and can reassemble the cross-node
// timeline of a single distributed trace.
//
//	cotop -cluster 127.0.0.1:9100,127.0.0.1:9101,127.0.0.1:9102
//	cotop -cluster ... -trace 4f2a9c01d3e85b77      # one trace, all nodes
//	cotop -cluster ... -traces                      # list known trace IDs
//	cotop -cluster ... -json                        # merged snapshot, JSON
//
// The default view is one screen: cluster-merged counters and gauges,
// the counter/gauge vectors (quorum pick counts by size, per-node
// capacity and load-EWMA cells from the weighted strategies, per-shard
// totals), the latency histograms' tails, per-shard route latency, and
// hedge attribution.
// Merging rules live in internal/capi (ScrapeCluster); cotop is a thin
// renderer over them.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"coterie/internal/capi"
)

func main() {
	var (
		cluster = flag.String("cluster", "", "comma-separated admin addresses (host:port,host:port,...)")
		trace   = flag.String("trace", "", "print the cross-node timeline of this trace ID (hex)")
		traces  = flag.Bool("traces", false, "list distinct trace IDs seen across the cluster")
		asJSON  = flag.Bool("json", false, "emit the merged cluster snapshot as JSON")
		timeout = flag.Duration("timeout", 5*time.Second, "total scrape timeout")
	)
	flag.Parse()
	if *cluster == "" {
		fmt.Fprintln(os.Stderr, "cotop: -cluster is required")
		os.Exit(2)
	}
	addrs := strings.Split(*cluster, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	cs := capi.ScrapeCluster(ctx, nil, addrs)
	for _, err := range cs.Errs {
		fmt.Fprintln(os.Stderr, "cotop: scrape:", err)
	}
	if len(cs.Nodes) == 0 {
		fmt.Fprintln(os.Stderr, "cotop: no nodes reachable")
		os.Exit(1)
	}

	switch {
	case *trace != "":
		if err := printTimeline(cs, *trace); err != nil {
			fmt.Fprintln(os.Stderr, "cotop:", err)
			os.Exit(1)
		}
	case *traces:
		for _, id := range cs.TraceIDs() {
			fmt.Println(id)
		}
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(clusterJSON(cs)); err != nil {
			fmt.Fprintln(os.Stderr, "cotop:", err)
			os.Exit(1)
		}
	default:
		printSummary(os.Stdout, cs)
	}
}

// printTimeline renders one distributed trace as a cross-node timeline:
// the coordinator span first, then every replica's server span, each with
// its flight events indented beneath it.
func printTimeline(cs *capi.ClusterSnapshot, id string) error {
	spans, err := cs.Timeline(id)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans for trace %s on %d reachable nodes", id, len(cs.Nodes))
	}
	fmt.Printf("trace %s: %d spans across %d nodes\n", spans[0].TraceID, len(spans), countNodes(spans))
	origin := spans[0].Start
	for _, s := range spans {
		role := "coordinator"
		if s.Kind == "serve" {
			role = "replica"
		}
		fmt.Printf("  +%-9s n%d %-11s %-6s item=%s outcome=%s elapsed=%s [%s]\n",
			s.Start.Sub(origin).Round(time.Microsecond), s.Node, role, s.Kind,
			s.Item, s.Outcome, time.Duration(s.ElapsedNS).Round(time.Microsecond), s.ScrapedFrom)
		for _, e := range s.Events {
			line := e.Kind
			if e.Phase != "" {
				line += " " + e.Phase
			}
			fmt.Printf("      +%-9s %-16s dur=%s n=%d\n",
				time.Duration(e.WhenNS).Round(time.Microsecond), line,
				time.Duration(e.DurNS).Round(time.Microsecond), e.N)
		}
	}
	return nil
}

func countNodes(spans []capi.TraceSpan) int {
	seen := map[int]bool{}
	for _, s := range spans {
		seen[s.Node] = true
	}
	return len(seen)
}

// printSummary is the one-screen cluster view. It takes the writer so the
// merge round-trip test can capture it.
func printSummary(w io.Writer, cs *capi.ClusterSnapshot) {
	fmt.Fprintf(w, "cluster: %d/%d nodes reachable\n", len(cs.Nodes), len(cs.Nodes)+len(cs.Errs))
	for _, n := range cs.Nodes {
		fmt.Fprintf(w, "  %s: %d traces, %d counters\n", n.Addr, len(n.Traces), len(n.Counters))
	}

	names := make([]string, 0, len(cs.Counters))
	for name, v := range cs.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintln(w, "counters (cluster sum):")
	for _, name := range names {
		fmt.Fprintf(w, "  %-44s %d\n", name, cs.Counters[name])
	}

	gnames := make([]string, 0, len(cs.Gauges))
	for name, v := range cs.Gauges {
		if v != 0 {
			gnames = append(gnames, name)
		}
	}
	if len(gnames) > 0 {
		sort.Strings(gnames)
		fmt.Fprintln(w, "gauges (cluster sum):")
		for _, name := range gnames {
			fmt.Fprintf(w, "  %-44s %d\n", name, cs.Gauges[name])
		}
	}

	// Vector metrics — per-size quorum pick counts, per-node
	// capacities and load estimates from the weighted strategies, per-shard
	// totals — render as index:value pairs over the cluster-summed cells.
	vnames := make([]string, 0, len(cs.Vecs))
	for name, vals := range cs.Vecs {
		if s := fmtVec(vals); s != "" {
			vnames = append(vnames, name)
		}
	}
	if len(vnames) > 0 {
		sort.Strings(vnames)
		fmt.Fprintln(w, "counter vectors (cluster sum, index:value):")
		for _, name := range vnames {
			fmt.Fprintf(w, "  %-44s %s\n", name, fmtVec(cs.Vecs[name]))
		}
	}
	gvnames := make([]string, 0, len(cs.GaugeVecs))
	for name, vals := range cs.GaugeVecs {
		if s := fmtVec(vals); s != "" {
			gvnames = append(gvnames, name)
		}
	}
	if len(gvnames) > 0 {
		sort.Strings(gvnames)
		fmt.Fprintln(w, "gauge vectors (cluster sum, index:value):")
		for _, name := range gvnames {
			fmt.Fprintf(w, "  %-44s %s\n", name, fmtVec(cs.GaugeVecs[name]))
		}
	}

	hnames := make([]string, 0, len(cs.Hists))
	for name := range cs.Hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	fmt.Fprintln(w, "latency (cluster merge):")
	for _, name := range hnames {
		h := cs.Hists[name]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-44s n=%-8d p50=%-10s p99=%-10s p999=%s\n", name, h.Count,
			time.Duration(h.Quantile(0.5)), time.Duration(h.Quantile(0.99)), time.Duration(h.Quantile(0.999)))
	}
	for name, hs := range cs.HistVecs {
		for i, h := range hs {
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "  %s{index=%d}%*s n=%-8d p50=%-10s p99=%-10s p999=%s\n",
				name, i, max(1, 34-len(name)), "", h.Count,
				time.Duration(h.Quantile(0.5)), time.Duration(h.Quantile(0.99)), time.Duration(h.Quantile(0.999)))
		}
	}

	if ids := cs.TraceIDs(); len(ids) > 0 {
		n := len(ids)
		if n > 8 {
			n = 8
		}
		fmt.Fprintf(w, "recent traces (%d known, -trace <id> for a timeline):\n", len(ids))
		for _, id := range ids[:n] {
			fmt.Fprintf(w, "  %s\n", id)
		}
	}
}

// fmtVec renders a vector's non-zero cells as space-separated index:value
// pairs ("" when every cell is zero, so all-zero vectors stay off the
// screen like zero counters do).
func fmtVec[T uint64 | int64](vals []T) string {
	var b strings.Builder
	for i, v := range vals {
		if v == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", i, v)
	}
	return b.String()
}

// clusterJSON shapes the merged snapshot for -json output.
func clusterJSON(cs *capi.ClusterSnapshot) any {
	type node struct {
		Addr   string `json:"addr"`
		Traces int    `json:"traces"`
	}
	nodes := make([]node, 0, len(cs.Nodes))
	for _, n := range cs.Nodes {
		nodes = append(nodes, node{Addr: n.Addr, Traces: len(n.Traces)})
	}
	return map[string]any{
		"nodes":         nodes,
		"counters":      cs.Counters,
		"gauges":        cs.Gauges,
		"vectors":       cs.Vecs,
		"gauge_vectors": cs.GaugeVecs,
		"trace_ids":     cs.TraceIDs(),
	}
}
