// Net-mode loadgen: -net tcp spawns one coteried process per cluster
// member (re-executing this binary's `coteried` subcommand) and drives
// the cluster over loopback TCP through the capi client API. The worker
// loop, churn cadence, and report shape mirror the in-process mode, with
// two differences that only exist across real processes:
//
//   - Churn kills daemons with SIGKILL and respawns them with -recovering,
//     exercising the paper's recovering-replica path end to end across
//     process boundaries (crash amnesia, epoch readmission, propagation).
//   - Every client operation is recorded into a per-item onecopy history
//     and checked for one-copy serializability at the end of the run; a
//     write whose outcome is ambiguous (timeout, unavailability, transport
//     failure after the commit point may have been reached) records as a
//     MaybeWrite wildcard, a clean Conflict abort records nothing.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	"coterie/internal/capi"
	"coterie/internal/core"
	"coterie/internal/daemon"
	dl "coterie/internal/deadline"
	"coterie/internal/nodeset"
	"coterie/internal/obs"
	"coterie/internal/onecopy"
	"coterie/internal/replica"
	"coterie/internal/transport"
	"coterie/internal/transport/tcpnet"
	"coterie/internal/workload"
)

// reservePorts picks n distinct loopback addresses by binding ephemeral
// listeners and releasing them. Fixed addresses (not :0 per daemon) are
// required so a killed daemon's replacement can rebind the same address
// and be re-dialed transparently by everyone else.
func reservePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

// proc is one spawned coteried process. admin is the daemon's bound admin
// address ("" when -admin is off).
type proc struct {
	id    nodeset.ID
	cmd   *exec.Cmd
	admin string
}

// spawnDaemon re-executes this binary's coteried subcommand for node id
// and blocks until the daemon is ready to serve. Readiness is the admin
// plane's /healthz answering 200 — the daemon binds its transport listener
// before the admin listener, so a healthy admin plane implies a serving
// data plane. The stdout READY line remains the bootstrap (it carries the
// ephemeral admin port) and the whole handshake when -admin is off.
func spawnDaemon(exe string, id nodeset.ID, book map[nodeset.ID]string, cfg config, recovering bool) (*proc, error) {
	items := cfg.items
	if cfg.shards > 0 {
		items = 0 // sharded daemons materialize replicas lazily
	}
	args := []string{
		"coteried",
		"-node", strconv.Itoa(int(id)),
		"-cluster", daemon.FormatCluster(book),
		"-items", strconv.Itoa(items),
		"-item-size", strconv.Itoa(cfg.itemSize),
		"-call-timeout", cfg.callTimeout.String(),
		"-strategy", cfg.strategy,
		"-pipeline=" + strconv.FormatBool(cfg.pipeline),
		"-obs=" + strconv.FormatBool(cfg.obsOn),
	}
	if cfg.shards > 0 {
		args = append(args, "-shards", strconv.Itoa(cfg.shards))
		if cfg.rf > 0 {
			args = append(args, "-rf", strconv.Itoa(cfg.rf))
		}
		if cfg.maxCoords > 0 {
			args = append(args, "-max-coords", strconv.Itoa(cfg.maxCoords))
		}
	}
	if cfg.slowRead > 0 && int(id) == cfg.slowNode {
		args = append(args, "-slow-read", cfg.slowRead.String())
	}
	if cfg.capacity != "" {
		args = append(args, "-capacity", cfg.capacity)
	}
	if cfg.batch {
		args = append(args, "-batch")
		if cfg.batchMax > 0 {
			args = append(args, "-batch-max", strconv.Itoa(cfg.batchMax))
		}
		if cfg.batchQueue > 0 {
			args = append(args, "-batch-queue", strconv.Itoa(cfg.batchQueue))
		}
	}
	if cfg.batchProp {
		args = append(args, "-batch-prop")
	}
	if cfg.pool > 0 {
		args = append(args, "-pool", strconv.Itoa(cfg.pool))
	}
	if recovering {
		args = append(args, "-recovering")
	}
	if cfg.pprofPort > 0 {
		args = append(args, "-pprof", fmt.Sprintf("127.0.0.1:%d", cfg.pprofPort+1+int(id)))
	}
	if cfg.adminOn {
		// Ephemeral port: the READY line reports the bound address, so
		// spawner and daemon never race on port reservation.
		args = append(args, "-admin", "127.0.0.1:0")
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	ready := make(chan string, 1)
	fail := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			var gotID int
			var addr, adminAddr string
			if n, _ := fmt.Sscanf(sc.Text(), "READY %d %s admin=%s", &gotID, &addr, &adminAddr); n >= 2 {
				ready <- adminAddr
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe; EOF
		// (child death) also lands here.
		for sc.Scan() {
		}
		select {
		case fail <- fmt.Errorf("node %d exited before READY", id):
		default:
		}
	}()
	p := &proc{id: id, cmd: cmd}
	select {
	case adminAddr := <-ready:
		p.admin = adminAddr
	case err := <-fail:
		cmd.Process.Kill()
		cmd.Wait()
		return nil, err
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("node %d not READY after 15s", id)
	}
	if p.admin != "" {
		if err := waitHealthy(p.admin, 15*time.Second); err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("node %d: %w", id, err)
		}
	}
	return p, nil
}

// waitHealthy polls the daemon's /healthz until it answers 200.
func waitHealthy(adminAddr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	url := "http://" + adminAddr + "/healthz"
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("not healthy at %s after %s", url, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// adminAddrs collects the live daemons' admin addresses.
func adminAddrs(procs []*proc) []string {
	var addrs []string
	for _, p := range procs {
		if p != nil && p.admin != "" {
			addrs = append(addrs, p.admin)
		}
	}
	return addrs
}

// clusterScrape scrapes every daemon's admin endpoint after a run and
// returns the cluster-merged snapshot, printing the merged protocol
// counters and a scrape health line to stderr. Returns nil when the admin
// plane is off or nothing answered.
func clusterScrape(procs []*proc) *capi.ClusterSnapshot {
	addrs := adminAddrs(procs)
	if len(addrs) == 0 {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cs := capi.ScrapeCluster(ctx, nil, addrs)
	for _, err := range cs.Errs {
		fmt.Fprintf(os.Stderr, "loadgen: cluster scrape: %v\n", err)
	}
	if len(cs.Nodes) == 0 {
		return nil
	}
	fmt.Fprintf(os.Stderr, "--- cluster summary (%d/%d daemons scraped) ---\n", len(cs.Nodes), len(addrs))
	names := make([]string, 0, len(cs.Counters))
	for name, v := range cs.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "%-45s %d\n", name, cs.Counters[name])
	}
	hnames := make([]string, 0, len(cs.Hists))
	for name := range cs.Hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := cs.Hists[name]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "%-45s count=%d p50=%s p99=%s\n", name, h.Count,
			time.Duration(h.Quantile(0.5)), time.Duration(h.Quantile(0.99)))
	}
	return cs
}

func (p *proc) kill() {
	p.cmd.Process.Kill() // SIGKILL: a crash, not a shutdown
	p.cmd.Wait()
}

func (p *proc) stop() {
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
}

// statusErr maps a capi reply status back onto the client error taxonomy
// the outcome accounting understands.
func statusErr(st capi.Status, detail string) error {
	switch st {
	case capi.StatusOK:
		return nil
	case capi.StatusConflict:
		return fmt.Errorf("%w: %s", core.ErrConflict, detail)
	case capi.StatusUnavailable:
		return fmt.Errorf("%w: %s", core.ErrUnavailable, detail)
	default:
		return errors.New(detail)
	}
}

func runTCP(cfg config) error {
	if cfg.latency > 0 {
		return fmt.Errorf("-latency is simulation-only (real TCP has real latency)")
	}
	strategy, err := core.ParseStrategy(cfg.strategy)
	if err != nil {
		return err
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("cannot self-spawn daemons: %w", err)
	}
	addrs, err := reservePorts(cfg.nodes)
	if err != nil {
		return err
	}
	book := make(map[nodeset.ID]string, cfg.nodes)
	for i, a := range addrs {
		book[nodeset.ID(i)] = a
	}

	procs := make([]*proc, cfg.nodes)
	var procMu sync.Mutex // churn swaps entries while shutdown reads them
	for i := range procs {
		p, err := spawnDaemon(exe, nodeset.ID(i), book, cfg, false)
		if err != nil {
			for _, q := range procs[:i] {
				q.kill()
			}
			return err
		}
		procs[i] = p
	}
	defer func() {
		procMu.Lock()
		defer procMu.Unlock()
		for _, p := range procs {
			if p != nil {
				p.stop()
			}
		}
	}()
	fmt.Fprintf(os.Stderr, "loadgen: %d coteried daemons up (%s)\n", cfg.nodes, daemon.FormatCluster(book))

	stopPprof, err := servePprof(cfg.pprofPort)
	if err != nil {
		return err
	}
	defer stopPprof()

	reg := obs.Nop
	if cfg.obsOn {
		reg = obs.New()
	}
	topts := []tcpnet.Option{tcpnet.WithPipeline(cfg.pipeline)}
	if reg != obs.Nop {
		topts = append(topts, tcpnet.WithObs(reg))
	}
	if cfg.pool > 0 {
		topts = append(topts, tcpnet.WithPoolSize(cfg.pool))
	}
	cli := tcpnet.New(book, topts...)
	defer cli.Close()

	recorders := make([]*onecopy.Recorder, cfg.items)
	for i := range recorders {
		recorders[i] = onecopy.NewRecorder(make([]byte, cfg.itemSize))
	}

	stats := make([]workerStats, cfg.workers)
	deadline := time.Now().Add(cfg.duration)
	ctx := context.Background()
	runCtx, runCancel := context.WithDeadline(ctx, deadline)
	defer runCancel()
	var wg sync.WaitGroup
	start := time.Now()
	pacer := workload.NewPacer(cfg.rate, start)

	if cfg.churn > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			churnProcs(cfg, exe, book, procs, &procMu, cli, deadline)
		}()
	}

	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			rng := rand.New(rand.NewSource(int64(mix64(uint64(cfg.seed) + uint64(w)*0x9e3779b97f4a7c15))))
			from := nodeset.ID(cfg.nodes + w)
			for time.Now().Before(deadline) {
				began, due := pacer.Wait(runCtx)
				if !due {
					return
				}
				item := w % cfg.items
				if !cfg.disjoint {
					item = rng.Intn(cfg.items)
				}
				isRead := rng.Float64() < cfg.readFrac
				node := nodeset.ID(rng.Intn(cfg.nodes))
				if cfg.affinity && !isRead {
					node = nodeset.ID(item % cfg.nodes)
				}
				name := fmt.Sprintf("item-%d", item)
				rec := recorders[item]
				// A lazily armed deadline context: the transport propagates
				// the deadline on the wire and bounds the wait with a pooled
				// timer, so the op's context never allocates cancellation
				// machinery on the happy path.
				opCtx, cancel := dl.Bound(ctx, cfg.timeout)
				if isRead {
					opStart := rec.Begin()
					reply, callErr := cli.Call(opCtx, from, node, capi.Read{Item: name})
					err := opError(opCtx, reply, callErr)
					st.readOut.add(err)
					if err == nil {
						vr := reply.(capi.ReadReply)
						rec.EndRead(opStart, vr.Version, vr.Value)
						st.reads++
						st.readLat = append(st.readLat, time.Since(began))
					} else {
						st.failures++
					}
				} else {
					length := 1 + rng.Intn(cfg.writeLen)
					data := make([]byte, length) // recorded histories own their bytes
					for i := range data {
						data[i] = byte('a' + rng.Intn(26))
					}
					u := replica.Update{Offset: rng.Intn(cfg.itemSize - length + 1), Data: data}
					opStart := rec.Begin()
					reply, callErr := cli.Call(opCtx, from, node, capi.Write{Item: name, Update: u})
					err := opError(opCtx, reply, callErr)
					st.writeOut.add(err)
					switch {
					case err == nil:
						rec.EndWrite(opStart, reply.(capi.WriteReply).Version, u)
						st.writes++
						st.writeLat = append(st.writeLat, time.Since(began))
					case errors.Is(err, core.ErrConflict):
						// Clean abort: the coordinator never reached the
						// commit point, so the write cannot have applied.
						st.conflicts++
					default:
						// Ambiguous: the commit may have begun before the
						// failure; the history checker must allow both.
						rec.EndMaybeWrite(opStart, u)
						st.failures++
					}
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := result{
		Nodes: cfg.nodes, Items: cfg.items, Workers: cfg.workers,
		ReadFrac:   cfg.readFrac,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       cfg.seed,
		Obs:        cfg.obsOn,
		Batch:      cfg.batch,
		Strategy:   strategy.String(),
		Capacity:   cfg.capacity,
		Affinity:   cfg.affinity,
		BatchProp:  cfg.batchProp,
		RateTarget: cfg.rate,
		ChurnMs:    cfg.churn.Milliseconds(),
		ElapsedSec: elapsed.Seconds(),
		Net:        "tcp",
		Pipeline:   &cfg.pipeline,
	}
	var readLat, writeLat []time.Duration
	for i := range stats {
		st := &stats[i]
		res.Reads += st.reads
		res.Writes += st.writes
		res.Conflicts += st.conflicts
		res.Failures += st.failures
		addOutcomes(&res.ReadOutcomes, st.readOut)
		addOutcomes(&res.WriteOutcomes, st.writeOut)
		readLat = append(readLat, st.readLat...)
		writeLat = append(writeLat, st.writeLat...)
	}
	res.Ops = res.Reads + res.Writes
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	res.ReadP50us = percentile(readLat, 0.50).Microseconds()
	res.ReadP99us = percentile(readLat, 0.99).Microseconds()
	res.WriteP50us = percentile(writeLat, 0.50).Microseconds()
	res.WriteP99us = percentile(writeLat, 0.99).Microseconds()
	res.ReadP999us = percentile(readLat, 0.999).Microseconds()
	res.WriteP999us = percentile(writeLat, 0.999).Microseconds()
	if cfg.slowRead > 0 && cfg.slowNode >= 0 {
		res.SlowRead = cfg.slowRead.String()
	}
	attachStrategyOutcomes(&res)

	// One-copy serializability check over every item's recorded history.
	violations := 0
	for i, rec := range recorders {
		if err := rec.Check(); err != nil {
			violations++
			fmt.Fprintf(os.Stderr, "loadgen: ONE-COPY VIOLATION item-%d: %v\n", i, err)
		}
	}
	res.OneCopyViolations = &violations
	if violations == 0 {
		fmt.Fprintf(os.Stderr, "loadgen: one-copy serializability verified across %d items (%d ops)\n", cfg.items, res.Ops)
	}

	if reg != obs.Nop {
		snap := reg.Snapshot()
		res.Metrics = make(map[string]int64, len(snap.Counters))
		for _, c := range snap.Counters {
			if c.Value != 0 {
				res.Metrics[c.Name] = c.Value
			}
		}
		printSummary(os.Stderr, snap)
	}
	procMu.Lock()
	cs := clusterScrape(procs)
	procMu.Unlock()
	if cs != nil {
		res.ClusterMetrics = nonZeroCounters(cs.Counters)
	}
	printLatencyGap(res, cfg.compare)

	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(res); err != nil {
		return err
	}
	if violations > 0 {
		return fmt.Errorf("%d one-copy serializability violations", violations)
	}
	return nil
}

// nonZeroCounters filters the merged counter map down to the counters that
// actually moved, for the JSON report.
func nonZeroCounters(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for name, v := range m {
		if v != 0 {
			out[name] = v
		}
	}
	return out
}

// opError folds a call's transport error, reply status, and the op
// context's own deadline into one error for outcome accounting.
func opError(ctx context.Context, reply transport.Message, callErr error) error {
	if callErr != nil {
		if ctx.Err() != nil {
			return context.DeadlineExceeded
		}
		return callErr
	}
	switch r := reply.(type) {
	case capi.ReadReply:
		return statusErr(r.Status, r.Detail)
	case capi.WriteReply:
		return statusErr(r.Status, r.Detail)
	case capi.CheckReply:
		return statusErr(r.Status, r.Detail)
	default:
		return fmt.Errorf("unexpected reply type %T", reply)
	}
}

// churnProcs is the process-level churn loop: SIGKILL a daemon, run epoch
// checks from survivors so the cluster installs a smaller epoch, respawn
// the daemon with -recovering, and check again so it is readmitted and
// propagation rebuilds it. The same failure path as the in-process
// churnLoop, but the crash is a real dead process and recovery re-crosses
// the wire.
func churnProcs(cfg config, exe string, book map[nodeset.ID]string, procs []*proc, mu *sync.Mutex, cli *tcpnet.Network, deadline time.Time) {
	rng := rand.New(rand.NewSource(int64(mix64(uint64(cfg.seed) ^ 0xc0ffee))))
	clientID := nodeset.ID(cfg.nodes + cfg.workers) // distinct from workers
	checkAll := func(avoid nodeset.ID) {
		for it := 0; it < cfg.items; it++ {
			from := nodeset.ID(rng.Intn(cfg.nodes))
			if from == avoid {
				from = (from + 1) % nodeset.ID(cfg.nodes)
			}
			ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
			_, _ = cli.Call(ctx, clientID, from, capi.CheckEpoch{Item: fmt.Sprintf("item-%d", it)})
			cancel()
		}
	}
	for time.Now().Before(deadline) {
		victim := nodeset.ID(rng.Intn(cfg.nodes))
		mu.Lock()
		p := procs[victim]
		procs[victim] = nil
		mu.Unlock()
		if p == nil {
			return // shutdown raced us
		}
		p.kill()
		checkAll(victim)
		stillGoing := sleepUntil(cfg.churn, deadline)
		np, err := spawnDaemon(exe, victim, book, cfg, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: churn respawn of node %d failed: %v\n", victim, err)
			return
		}
		mu.Lock()
		procs[victim] = np
		mu.Unlock()
		checkAll(victim)
		if !stillGoing || !sleepUntil(cfg.churn, deadline) {
			return
		}
	}
}
