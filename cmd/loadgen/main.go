// Command loadgen is a closed-loop throughput harness for the dynamic
// structured coterie protocol's data plane. It builds an in-process
// cluster of N nodes replicating M independent data items, then drives K
// worker goroutines that each repeatedly pick an item and a coordinator
// and execute a read or a partial write, waiting for each operation to
// finish before issuing the next (closed loop: offered load tracks
// service rate, so aggregate ops/sec measures the data plane itself, not
// a queue).
//
// The multi-item, multi-coordinator shape is the contention profile the
// protocol promises to serve well: operations on different items share
// the transport, the per-node replica tables and the history recorder,
// but no protocol-level locks. Before the data-plane work in this change,
// those shared structures serialized independent operations behind
// global mutexes; loadgen exists to measure exactly that.
//
// Output is one JSON object on stdout (see result), suitable for
// collecting into BENCH_2.json. Typical use:
//
//	go run ./cmd/loadgen -nodes 9 -items 8 -workers 8 -duration 3s
//	GOMAXPROCS=4 go run ./cmd/loadgen -read-frac 0.8
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"coterie/internal/core"
	"coterie/internal/nodeset"
	"coterie/internal/replica"
	"coterie/internal/transport"
)

type config struct {
	nodes       int
	items       int
	workers     int
	readFrac    float64
	duration    time.Duration
	itemSize    int
	writeLen    int
	seed        int64
	timeout     time.Duration
	callTimeout time.Duration
	disjoint    bool
}

// result is the JSON report. Latencies are microseconds.
type result struct {
	Nodes      int     `json:"nodes"`
	Items      int     `json:"items"`
	Workers    int     `json:"workers"`
	ReadFrac   float64 `json:"read_frac"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Seed       int64   `json:"seed"`
	ElapsedSec float64 `json:"elapsed_sec"`
	Ops        int     `json:"ops"`
	Reads      int     `json:"reads"`
	Writes     int     `json:"writes"`
	Conflicts  int     `json:"conflicts"`
	Failures   int     `json:"failures"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	ReadP50us  int64   `json:"read_p50_us"`
	ReadP99us  int64   `json:"read_p99_us"`
	WriteP50us int64   `json:"write_p50_us"`
	WriteP99us int64   `json:"write_p99_us"`
}

// workerStats accumulates one worker's counts and latency samples; workers
// never share these, so the measurement loop itself is contention-free.
type workerStats struct {
	reads, writes       int
	conflicts, failures int
	readLat, writeLat   []time.Duration
}

func main() {
	var cfg config
	flag.IntVar(&cfg.nodes, "nodes", 9, "replica nodes per item")
	flag.IntVar(&cfg.items, "items", 8, "independent data items")
	flag.IntVar(&cfg.workers, "workers", 8, "closed-loop client goroutines")
	flag.Float64Var(&cfg.readFrac, "read-frac", 0.5, "fraction of operations that are reads")
	flag.DurationVar(&cfg.duration, "duration", 3*time.Second, "measurement interval")
	flag.IntVar(&cfg.itemSize, "item-size", 256, "logical item size in bytes")
	flag.IntVar(&cfg.writeLen, "write-len", 16, "max partial-write length in bytes")
	flag.Int64Var(&cfg.seed, "seed", 1, "PRNG seed")
	flag.DurationVar(&cfg.timeout, "op-timeout", 5*time.Second, "per-operation timeout")
	flag.DurationVar(&cfg.callTimeout, "call-timeout", 250*time.Millisecond, "per-RPC-round timeout (also scales lock leases)")
	flag.BoolVar(&cfg.disjoint, "disjoint", false, "pin worker w to item w%items: no protocol-level lock conflicts, isolating shared-structure contention")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if cfg.nodes <= 0 || cfg.items <= 0 || cfg.workers <= 0 {
		return fmt.Errorf("nodes, items and workers must be positive")
	}
	net := transport.NewNetwork(transport.WithSeed(cfg.seed))
	members := nodeset.Range(0, nodeset.ID(cfg.nodes))

	// One replica node per member; every node replicates every item and
	// hosts a coordinator per item, like the paper's symmetric deployment.
	// Lock leases follow the coordinator's round timeout (core's default
	// relation): conflicting operations that wedge each other's quorum
	// locks resolve on the lease, so a short round timeout keeps the
	// closed loop moving instead of measuring lease expiries.
	rcfg := replica.Config{LockLease: 4 * cfg.callTimeout}
	nodes := make([]*replica.Node, cfg.nodes)
	for i := range nodes {
		nodes[i] = replica.NewNode(nodeset.ID(i), net, rcfg)
		defer nodes[i].Close()
	}
	coords := make([][]*core.Coordinator, cfg.items) // [item][node]
	for it := 0; it < cfg.items; it++ {
		name := fmt.Sprintf("item-%d", it)
		coords[it] = make([]*core.Coordinator, cfg.nodes)
		for i, n := range nodes {
			rep, err := n.AddItem(name, members, make([]byte, cfg.itemSize))
			if err != nil {
				return err
			}
			coords[it][i] = core.NewCoordinator(rep, net, members, core.Options{
				CallTimeout: cfg.callTimeout,
				Replica:     rcfg,
			})
		}
	}

	stats := make([]workerStats, cfg.workers)
	deadline := time.Now().Add(cfg.duration)
	ctx := context.Background()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			rng := rand.New(rand.NewSource(int64(mix64(uint64(cfg.seed) + uint64(w)*0x9e3779b97f4a7c15))))
			buf := make([]byte, cfg.writeLen)
			for time.Now().Before(deadline) {
				item := w % cfg.items
				if !cfg.disjoint {
					item = rng.Intn(cfg.items)
				}
				co := coords[item][rng.Intn(cfg.nodes)]
				opCtx, cancel := context.WithTimeout(ctx, cfg.timeout)
				if rng.Float64() < cfg.readFrac {
					began := time.Now()
					if _, _, err := co.Read(opCtx); err == nil {
						st.reads++
						st.readLat = append(st.readLat, time.Since(began))
					} else {
						st.failures++
					}
				} else {
					length := 1 + rng.Intn(cfg.writeLen)
					data := buf[:length]
					for i := range data {
						data[i] = byte('a' + rng.Intn(26))
					}
					u := replica.Update{Offset: rng.Intn(cfg.itemSize - length + 1), Data: data}
					began := time.Now()
					if _, err := co.Write(opCtx, u); err == nil {
						st.writes++
						st.writeLat = append(st.writeLat, time.Since(began))
					} else if isConflict(err) {
						st.conflicts++
					} else {
						st.failures++
					}
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := result{
		Nodes: cfg.nodes, Items: cfg.items, Workers: cfg.workers,
		ReadFrac:   cfg.readFrac,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       cfg.seed,
		ElapsedSec: elapsed.Seconds(),
	}
	var readLat, writeLat []time.Duration
	for i := range stats {
		st := &stats[i]
		res.Reads += st.reads
		res.Writes += st.writes
		res.Conflicts += st.conflicts
		res.Failures += st.failures
		readLat = append(readLat, st.readLat...)
		writeLat = append(writeLat, st.writeLat...)
	}
	res.Ops = res.Reads + res.Writes
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	res.ReadP50us = percentile(readLat, 0.50).Microseconds()
	res.ReadP99us = percentile(readLat, 0.99).Microseconds()
	res.WriteP50us = percentile(writeLat, 0.50).Microseconds()
	res.WriteP99us = percentile(writeLat, 0.99).Microseconds()

	enc := json.NewEncoder(os.Stdout)
	return enc.Encode(res)
}

// isConflict matches core.ErrConflict without errors.Is to stay
// compile-compatible across harness revisions.
func isConflict(err error) bool {
	for ; err != nil; err = unwrap(err) {
		if err == core.ErrConflict {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// percentile returns the p-quantile of samples (nearest-rank); zero when
// no samples were collected.
func percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(p * float64(len(samples)-1))
	return samples[idx]
}

// mix64 is the splitmix64 output function, used to derive independent
// per-worker PRNG streams from the base seed.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
