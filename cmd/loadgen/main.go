// Command loadgen is a throughput harness for the dynamic structured
// coterie protocol's data plane. It builds an in-process cluster of N
// nodes replicating M independent data items, then drives K worker
// goroutines that each repeatedly pick an item and a coordinator and
// execute a read or a partial write. By default the loop is closed (each
// worker waits for its operation before issuing the next, so offered load
// tracks service rate and aggregate ops/sec measures the data plane
// itself, not a queue); -rate R switches to an open loop where the
// workers collectively issue R operations per second on a fixed schedule
// and latency is measured from each operation's scheduled arrival, so
// backlog shows up in the tail percentiles.
//
// The group-commit pipeline is driven by -batch (with -batch-max and
// -batch-queue sizing the combiner), and merges best when -affinity
// routes all writes for an item through one coordinator. -strategy
// selects quorum picking: "hint" rotates pseudo-randomly, "load" steers
// toward the least-loaded endpoints via a shared EWMA load tracker.
// -batch-prop batches stale propagation per target node.
//
// The multi-item, multi-coordinator shape is the contention profile the
// protocol promises to serve well: operations on different items share
// the transport, the per-node replica tables and the history recorder,
// but no protocol-level locks. Before the data-plane work in this change,
// those shared structures serialized independent operations behind
// global mutexes; loadgen exists to measure exactly that.
//
// Observability (-obs, on by default) attaches the obs registry and a
// flight recorder to every layer; -metrics ADDR additionally serves the
// live registry over HTTP (Prometheus text at /, ?format=json,
// ?format=traces). -latency injects per-call network delay and -churn
// crashes/restarts nodes with epoch checks in between, which surfaces the
// paper's failure-path metrics: epoch redirects, stale marks and the
// staleness-duration histogram. A human-readable summary and one sample
// flight trace go to stderr; stdout stays one pure JSON object (see
// result), suitable for collecting into BENCH_2.json / BENCH_3.json.
// Typical use:
//
//	go run ./cmd/loadgen -nodes 9 -items 8 -workers 8 -duration 3s
//	go run ./cmd/loadgen -latency 200us -churn 300ms -metrics :9090
//	GOMAXPROCS=4 go run ./cmd/loadgen -read-frac 0.8 -obs=false
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"coterie/internal/capi"
	"coterie/internal/core"
	"coterie/internal/coterie"
	"coterie/internal/daemon"
	"coterie/internal/nodeset"
	"coterie/internal/obs"
	"coterie/internal/obs/expose"
	"coterie/internal/replica"
	"coterie/internal/transport"
	"coterie/internal/workload"
)

type config struct {
	nodes       int
	items       int
	workers     int
	readFrac    float64
	duration    time.Duration
	itemSize    int
	writeLen    int
	seed        int64
	timeout     time.Duration
	callTimeout time.Duration
	disjoint    bool
	obsOn       bool
	metricsAddr string
	latency     time.Duration
	churn       time.Duration
	traceCap    int
	batch       bool
	batchMax    int
	batchQueue  int
	strategy    string
	capacity    string
	zipfItems   bool
	rate        float64
	affinity    bool
	batchProp   bool
	netMode     string
	pipeline    bool
	pool        int
	pprofPort   int
	compare     string
	adminOn     bool
	traceSample int

	// Sharded mode (-shards > 0): the keyspace is hashed across many
	// coteries and driven through the smart capi client instead of the
	// fixed item list.
	shards      int
	rf          int
	keyspace    int
	zipfTheta   float64
	hedge       bool
	slowNode    int
	slowRead    time.Duration
	sweep       bool
	checkStride int
	maxCoords   int
}

// outcomes is the per-operation-type disposition breakdown.
type outcomes struct {
	OK          int `json:"ok"`
	Unavailable int `json:"quorum_unavailable"`
	Conflict    int `json:"conflict"`
	TimedOut    int `json:"timed_out"`
	Other       int `json:"other"`
}

func (o *outcomes) add(err error) {
	switch {
	case err == nil:
		o.OK++
	case errors.Is(err, context.DeadlineExceeded):
		o.TimedOut++
	case errors.Is(err, core.ErrConflict):
		o.Conflict++
	case errors.Is(err, core.ErrUnavailable):
		o.Unavailable++
	default:
		o.Other++
	}
}

// result is the JSON report. Latencies are microseconds.
type result struct {
	Nodes         int              `json:"nodes"`
	Items         int              `json:"items"`
	Workers       int              `json:"workers"`
	ReadFrac      float64          `json:"read_frac"`
	GOMAXPROCS    int              `json:"gomaxprocs"`
	NumCPU        int              `json:"num_cpu"`
	Seed          int64            `json:"seed"`
	Obs           bool             `json:"obs"`
	Batch         bool             `json:"batch"`
	Strategy      string           `json:"strategy"`
	Capacity      string           `json:"capacity,omitempty"`
	ZipfItems     bool             `json:"zipf_items,omitempty"`
	Affinity      bool             `json:"affinity"`
	BatchProp     bool             `json:"batch_prop"`
	RateTarget    float64          `json:"rate_target,omitempty"`
	LatencyUs     int64            `json:"latency_us"`
	ChurnMs       int64            `json:"churn_ms"`
	ElapsedSec    float64          `json:"elapsed_sec"`
	Ops           int              `json:"ops"`
	Reads         int              `json:"reads"`
	Writes        int              `json:"writes"`
	Conflicts     int              `json:"conflicts"`
	Failures      int              `json:"failures"`
	OpsPerSec     float64          `json:"ops_per_sec"`
	ReadP50us     int64            `json:"read_p50_us"`
	ReadP99us     int64            `json:"read_p99_us"`
	ReadP999us    int64            `json:"read_p999_us"`
	WriteP50us    int64            `json:"write_p50_us"`
	WriteP99us    int64            `json:"write_p99_us"`
	WriteP999us   int64            `json:"write_p999_us"`
	ReadOutcomes  outcomes         `json:"read_outcomes"`
	WriteOutcomes outcomes         `json:"write_outcomes"`
	Metrics       map[string]int64 `json:"metrics,omitempty"`

	// StrategyOutcomes keys the run's read/write dispositions by the
	// canonical strategy name, so sweep harnesses can merge reports from
	// different strategies without re-deriving which run was which.
	StrategyOutcomes map[string]opOutcomes `json:"strategy_outcomes,omitempty"`

	// Net-mode extras: which data plane ran, whether the TCP transport
	// pipelined, and the one-copy serializability verdict (nil = history
	// checking did not run, as in sim mode).
	Net               string `json:"net,omitempty"`
	Pipeline          *bool  `json:"pipeline,omitempty"`
	OneCopyViolations *int   `json:"onecopy_violations,omitempty"`

	// Sharded-mode extras: the placement geometry, how much of the
	// keyspace the run actually touched (distinct keys) and history-checked
	// (checked keys), per-shard operation counts, and the smart client's
	// retry/hedge counters.
	Shards       int               `json:"shards,omitempty"`
	RF           int               `json:"rf,omitempty"`
	Keyspace     int               `json:"keyspace,omitempty"`
	ZipfTheta    float64           `json:"zipf_theta,omitempty"`
	Hedge        *bool             `json:"hedge,omitempty"`
	SlowRead     string            `json:"slow_read,omitempty"`
	DistinctKeys int               `json:"distinct_keys,omitempty"`
	CheckedKeys  int               `json:"checked_keys,omitempty"`
	PerShardOps  []int64           `json:"per_shard_ops,omitempty"`
	Client       *capi.ClientStats `json:"client,omitempty"`

	// Cluster-merged counters scraped from every daemon's admin endpoint
	// after the run (tcp modes with -admin): the server-side totals the
	// client-side Metrics map cannot see.
	ClusterMetrics map[string]int64 `json:"cluster_metrics,omitempty"`
}

// workerStats accumulates one worker's counts and latency samples; workers
// never share these, so the measurement loop itself is contention-free.
type workerStats struct {
	reads, writes       int
	conflicts, failures int
	readOut, writeOut   outcomes
	readLat, writeLat   []time.Duration
}

func main() {
	// Self-spawn: `loadgen coteried <flags>` runs one daemon, so -net tcp
	// needs no separately built binary on the machine it runs on.
	if len(os.Args) > 1 && os.Args[1] == "coteried" {
		if err := daemon.RunMain(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "coteried:", err)
			os.Exit(1)
		}
		return
	}
	var cfg config
	flag.IntVar(&cfg.nodes, "nodes", 9, "replica nodes per item")
	flag.IntVar(&cfg.items, "items", 8, "independent data items")
	flag.IntVar(&cfg.workers, "workers", 8, "closed-loop client goroutines")
	flag.Float64Var(&cfg.readFrac, "read-frac", 0.5, "fraction of operations that are reads")
	flag.DurationVar(&cfg.duration, "duration", 3*time.Second, "measurement interval")
	flag.IntVar(&cfg.itemSize, "item-size", 256, "logical item size in bytes")
	flag.IntVar(&cfg.writeLen, "write-len", 16, "max partial-write length in bytes")
	flag.Int64Var(&cfg.seed, "seed", 1, "PRNG seed")
	flag.DurationVar(&cfg.timeout, "op-timeout", 5*time.Second, "per-operation timeout")
	flag.DurationVar(&cfg.callTimeout, "call-timeout", 250*time.Millisecond, "per-RPC-round timeout (also scales lock leases)")
	flag.BoolVar(&cfg.disjoint, "disjoint", false, "pin worker w to item w%items: no protocol-level lock conflicts, isolating shared-structure contention")
	flag.BoolVar(&cfg.obsOn, "obs", true, "attach the observability registry and flight recorder")
	flag.StringVar(&cfg.metricsAddr, "metrics", "", "serve live metrics over HTTP on this address (e.g. :9090); requires -obs")
	flag.DurationVar(&cfg.latency, "latency", 0, "mean injected per-call network latency (0 = none)")
	flag.DurationVar(&cfg.churn, "churn", 0, "crash/restart a node with epoch checks at this cadence (0 = none)")
	flag.IntVar(&cfg.traceCap, "trace-cap", 256, "flight recorder ring capacity")
	flag.BoolVar(&cfg.batch, "batch", false, "enable the group-commit write combiner")
	flag.IntVar(&cfg.batchMax, "batch-max", 0, "max writes merged per batched protocol round (0 = core default)")
	flag.IntVar(&cfg.batchQueue, "batch-queue", 0, "combiner queue depth before writers overflow to the single-write path (0 = core default)")
	flag.StringVar(&cfg.strategy, "strategy", "hint", "quorum selection strategy: hint (pseudo-random rotation), load (least-loaded via EWMA), optimized (capacity-weighted quorum distribution) or read-dominant (optimized with a small-read-quorum bias)")
	flag.StringVar(&cfg.capacity, "capacity", "", "relative node capacities for the weighted strategies: id=weight,... (unlisted nodes are 1.0)")
	flag.BoolVar(&cfg.zipfItems, "zipf-items", false, "pick items with Zipf(-zipf theta) popularity instead of uniformly (fixed-item modes; ignored with -disjoint)")
	flag.Float64Var(&cfg.rate, "rate", 0, "open-loop arrival rate in ops/sec across all workers (0 = closed loop)")
	flag.BoolVar(&cfg.affinity, "affinity", false, "route all writes for an item through one coordinator so group commit can merge them")
	flag.BoolVar(&cfg.batchProp, "batch-prop", false, "batch stale propagation per target node")
	flag.StringVar(&cfg.netMode, "net", "sim", "data plane: sim (in-process simulated network) or tcp (spawn coteried daemons and drive them over loopback)")
	flag.BoolVar(&cfg.pipeline, "pipeline", true, "tcp mode: multiplex calls over persistent connections (false = dial per call)")
	flag.IntVar(&cfg.pool, "pool", 0, "tcp mode: pipelined connections per peer (0 = transport default)")
	flag.IntVar(&cfg.pprofPort, "pprof", 0, "serve net/http/pprof on 127.0.0.1:PORT (tcp mode: daemon i serves on PORT+1+i)")
	flag.StringVar(&cfg.compare, "compare", "", "JSON result of a previous run to report the per-transport latency gap against (e.g. a -net sim result while running -net tcp)")
	flag.BoolVar(&cfg.adminOn, "admin", true, "tcp mode: give each spawned daemon an admin plane (/metrics /traces /healthz), use /healthz for readiness, and print a cluster-merged summary after the run")
	flag.IntVar(&cfg.traceSample, "trace-sample", 0, "sharded mode: sample 1 in N client operations into a cross-node distributed trace (0 = off, 1 = every op)")
	flag.IntVar(&cfg.shards, "shards", 0, "shard the keyspace across this many coteries and drive it through the smart client (requires -net tcp; 0 = fixed -items list)")
	flag.IntVar(&cfg.rf, "rf", 0, "replicas per shard in sharded mode (0 = daemon default)")
	flag.IntVar(&cfg.keyspace, "keyspace", 0, "distinct keys in sharded mode (0 = 1,000,000)")
	flag.Float64Var(&cfg.zipfTheta, "zipf", workload.DefaultZipfTheta, "Zipfian skew theta in (0,1) for sharded-mode key popularity")
	flag.BoolVar(&cfg.hedge, "hedge", false, "sharded mode: hedge reads to an alternate shard member after a p99-derived delay")
	flag.IntVar(&cfg.slowNode, "slow-node", -1, "node ID to slow down with -slow-read (-1 = none)")
	flag.DurationVar(&cfg.slowRead, "slow-read", 0, "injected service delay on the -slow-node node (sim mode: every message it serves; tcp/sharded: every client read)")
	flag.BoolVar(&cfg.sweep, "sweep", false, "sharded mode: interleave a full deterministic sweep of the keyspace so every key is touched at least once (runs past -duration if needed)")
	flag.IntVar(&cfg.checkStride, "check-stride", 1, "sharded mode: record one-copy history for every key-th key plus the hottest 1024 (1 = all keys; larger strides bound checker memory on million-key runs)")
	flag.IntVar(&cfg.maxCoords, "max-coords", 0, "sharded mode: live coordinator cap per daemon (0 = daemon default)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if cfg.nodes <= 0 || cfg.items <= 0 || cfg.workers <= 0 {
		return fmt.Errorf("nodes, items and workers must be positive")
	}
	if cfg.shards > 0 {
		return runShard(cfg)
	}
	switch cfg.netMode {
	case "sim":
	case "tcp":
		return runTCP(cfg)
	default:
		return fmt.Errorf("unknown -net %q (want sim or tcp)", cfg.netMode)
	}

	reg := obs.Nop
	if cfg.obsOn {
		reg = obs.New()
		reg.SetFlight(obs.NewFlightRecorder(cfg.traceCap))
	}
	if cfg.metricsAddr != "" {
		if reg == obs.Nop {
			return fmt.Errorf("-metrics requires -obs")
		}
		ln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		srv := &http.Server{Handler: expose.Handler(reg)}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "loadgen: serving metrics on http://%s/ (?format=json, ?format=traces)\n", ln.Addr())
	}

	stopPprof, err := servePprof(cfg.pprofPort)
	if err != nil {
		return err
	}
	defer stopPprof()

	tOpts := []transport.Option{transport.WithSeed(cfg.seed)}
	if reg != obs.Nop {
		tOpts = append(tOpts, transport.WithObs(reg))
	}
	if cfg.latency > 0 {
		mean := cfg.latency
		tOpts = append(tOpts, transport.WithLatency(func(r *rand.Rand) time.Duration {
			return mean/2 + time.Duration(r.Int63n(int64(mean)))
		}))
	}
	netw := transport.NewNetwork(tOpts...)
	members := nodeset.Range(0, nodeset.ID(cfg.nodes))

	// One replica node per member; every node replicates every item and
	// hosts a coordinator per item, like the paper's symmetric deployment.
	// Lock leases follow the coordinator's round timeout (core's default
	// relation): conflicting operations that wedge each other's quorum
	// locks resolve on the lease, so a short round timeout keeps the
	// closed loop moving instead of measuring lease expiries.
	strategy, err := core.ParseStrategy(cfg.strategy)
	if err != nil {
		return err
	}
	var tracker *core.LoadTracker
	if strategy != core.StrategyHint {
		// One tracker across every coordinator of every item: they all
		// steer by the same observed per-endpoint load.
		tracker = core.NewLoadTracker(netw, members, reg)
	}
	capacity, err := capacityFunc(cfg.capacity)
	if err != nil {
		return err
	}
	copts := core.Options{
		CallTimeout: cfg.callTimeout,
		Obs:         reg,
		Strategy:    strategy,
		Load:        tracker,
		Capacity:    capacity,
		GroupCommit: core.GroupCommitOptions{
			Enabled:  cfg.batch,
			MaxBatch: cfg.batchMax,
			MaxQueue: cfg.batchQueue,
		},
	}
	if strategy.Weighted() {
		// One engine across every coordinator of every item — the solved
		// distribution is cluster-wide, and per-coordinator engines would
		// multiply the background solves by nodes×items.
		copts.Engine = core.NewStrategyEngine(members, tracker, copts)
	}

	rcfg := replica.Config{LockLease: 4 * cfg.callTimeout, Obs: reg, PropagationBatch: cfg.batchProp}
	copts.Replica = rcfg
	nodes := make([]*replica.Node, cfg.nodes)
	for i := range nodes {
		nodes[i] = replica.NewNode(nodeset.ID(i), netw, rcfg)
		defer nodes[i].Close()
	}
	if cfg.slowRead > 0 && cfg.slowNode >= 0 && cfg.slowNode < cfg.nodes {
		// A weak node: every protocol message it serves takes -slow-read
		// longer. Registering over the node's own handler keeps the wrap
		// transparent to the protocol; only service time changes.
		inner := nodes[cfg.slowNode].Handler()
		delay := cfg.slowRead
		netw.Register(nodeset.ID(cfg.slowNode), func(ctx context.Context, from nodeset.ID, req transport.Message) (transport.Message, error) {
			time.Sleep(delay)
			return inner(ctx, from, req)
		})
		fmt.Fprintf(os.Stderr, "loadgen: node %d serves every message %s slower\n", cfg.slowNode, delay)
	}
	coords := make([][]*core.Coordinator, cfg.items) // [item][node]
	for it := 0; it < cfg.items; it++ {
		name := fmt.Sprintf("item-%d", it)
		coords[it] = make([]*core.Coordinator, cfg.nodes)
		for i, n := range nodes {
			rep, err := n.AddItem(name, members, make([]byte, cfg.itemSize))
			if err != nil {
				return err
			}
			coords[it][i] = core.NewCoordinator(rep, netw, members, copts)
		}
	}

	stats := make([]workerStats, cfg.workers)
	deadline := time.Now().Add(cfg.duration)
	ctx := context.Background()
	runCtx, runCancel := context.WithDeadline(ctx, deadline)
	defer runCancel()
	var wg sync.WaitGroup
	start := time.Now()
	// One pacer shared by all workers makes the union of their operations a
	// single fixed-rate arrival stream; nil (rate 0) keeps the closed loop.
	pacer := workload.NewPacer(cfg.rate, start)
	zipfStreams, err := zipfItemStreams(cfg)
	if err != nil {
		return err
	}

	if cfg.churn > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			churnLoop(ctx, cfg, netw, coords, deadline)
		}()
	}

	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			rng := rand.New(rand.NewSource(int64(mix64(uint64(cfg.seed) + uint64(w)*0x9e3779b97f4a7c15))))
			buf := make([]byte, cfg.writeLen)
			for time.Now().Before(deadline) {
				// In open-loop mode `began` is the operation's scheduled
				// arrival (possibly in the past when the system is behind);
				// in closed-loop mode Wait returns the current time.
				began, due := pacer.Wait(runCtx)
				if !due {
					return
				}
				item := pickItem(cfg, w, rng, zipfStreams)
				isRead := rng.Float64() < cfg.readFrac
				node := rng.Intn(cfg.nodes)
				if cfg.affinity && !isRead {
					// All writes to an item share a coordinator so the
					// group-commit combiner can merge them; reads stay spread.
					node = item % cfg.nodes
				}
				co := coords[item][node]
				opCtx, cancel := context.WithTimeout(ctx, cfg.timeout)
				if isRead {
					_, _, err := co.Read(opCtx)
					st.readOut.add(err)
					if err == nil {
						st.reads++
						st.readLat = append(st.readLat, time.Since(began))
					} else {
						st.failures++
					}
				} else {
					length := 1 + rng.Intn(cfg.writeLen)
					data := buf[:length]
					for i := range data {
						data[i] = byte('a' + rng.Intn(26))
					}
					u := replica.Update{Offset: rng.Intn(cfg.itemSize - length + 1), Data: data}
					_, err := co.Write(opCtx, u)
					st.writeOut.add(err)
					if err == nil {
						st.writes++
						st.writeLat = append(st.writeLat, time.Since(began))
					} else if errors.Is(err, core.ErrConflict) {
						st.conflicts++
					} else {
						st.failures++
					}
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := result{
		Nodes: cfg.nodes, Items: cfg.items, Workers: cfg.workers,
		ReadFrac:   cfg.readFrac,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       cfg.seed,
		Obs:        cfg.obsOn,
		Batch:      cfg.batch,
		Strategy:   strategy.String(),
		Capacity:   cfg.capacity,
		ZipfItems:  cfg.zipfItems,
		Affinity:   cfg.affinity,
		BatchProp:  cfg.batchProp,
		RateTarget: cfg.rate,
		LatencyUs:  cfg.latency.Microseconds(),
		ChurnMs:    cfg.churn.Milliseconds(),
		ElapsedSec: elapsed.Seconds(),
	}
	var readLat, writeLat []time.Duration
	for i := range stats {
		st := &stats[i]
		res.Reads += st.reads
		res.Writes += st.writes
		res.Conflicts += st.conflicts
		res.Failures += st.failures
		addOutcomes(&res.ReadOutcomes, st.readOut)
		addOutcomes(&res.WriteOutcomes, st.writeOut)
		readLat = append(readLat, st.readLat...)
		writeLat = append(writeLat, st.writeLat...)
	}
	res.Ops = res.Reads + res.Writes
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	res.ReadP50us = percentile(readLat, 0.50).Microseconds()
	res.ReadP99us = percentile(readLat, 0.99).Microseconds()
	res.WriteP50us = percentile(writeLat, 0.50).Microseconds()
	res.WriteP99us = percentile(writeLat, 0.99).Microseconds()
	res.ReadP999us = percentile(readLat, 0.999).Microseconds()
	res.WriteP999us = percentile(writeLat, 0.999).Microseconds()
	if cfg.slowRead > 0 && cfg.slowNode >= 0 {
		res.SlowRead = cfg.slowRead.String()
	}
	attachStrategyOutcomes(&res)

	if reg != obs.Nop {
		snap := reg.Snapshot()
		res.Metrics = make(map[string]int64, len(snap.Counters))
		for _, c := range snap.Counters {
			if c.Value != 0 {
				res.Metrics[c.Name] = c.Value
			}
		}
		printSummary(os.Stderr, snap)
	}
	printLatencyGap(res, cfg.compare)

	enc := json.NewEncoder(os.Stdout)
	return enc.Encode(res)
}

// churnLoop crashes one node at a time, runs epoch checks so the survivors
// install a smaller epoch, restarts the node and checks again so it is
// readmitted (stale) and propagation brings it current. This exercises the
// paper's failure path end to end: epoch redirects on the coordinators
// whose cached epoch went stale, stale marks on the readmitted replica,
// and a populated staleness-duration histogram.
func churnLoop(ctx context.Context, cfg config, netw *transport.Network, coords [][]*core.Coordinator, deadline time.Time) {
	rng := rand.New(rand.NewSource(int64(mix64(uint64(cfg.seed) ^ 0xc0ffee))))
	checkAll := func(avoid nodeset.ID) {
		for it := range coords {
			from := nodeset.ID(rng.Intn(cfg.nodes))
			if from == avoid {
				from = (from + 1) % nodeset.ID(cfg.nodes)
			}
			checkCtx, cancel := context.WithTimeout(ctx, cfg.timeout)
			_, _ = coords[it][from].CheckEpoch(checkCtx)
			cancel()
		}
	}
	for time.Now().Before(deadline) {
		victim := nodeset.ID(rng.Intn(cfg.nodes))
		netw.Crash(victim)
		checkAll(victim)
		if !sleepUntil(cfg.churn, deadline) {
			netw.Restart(victim)
			checkAll(victim)
			return
		}
		netw.Restart(victim)
		checkAll(victim)
		if !sleepUntil(cfg.churn, deadline) {
			return
		}
	}
}

// servePprof starts a net/http/pprof server on 127.0.0.1:port; port 0
// disables profiling and returns a no-op closer. Shared by sim and tcp
// mode (the client process; spawned daemons get their own ports).
func servePprof(port int) (func(), error) {
	if port <= 0 {
		return func() {}, nil
	}
	ln, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	runtime.SetMutexProfileFraction(100)
	srv := &http.Server{Handler: daemon.PprofMux()}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "loadgen: serving pprof on http://%s/debug/pprof/\n", ln.Addr())
	return func() { srv.Close(); ln.Close() }, nil
}

// sleepUntil sleeps d but not past the deadline; it reports whether the
// deadline is still ahead.
func sleepUntil(d time.Duration, deadline time.Time) bool {
	if remain := time.Until(deadline); remain < d {
		if remain > 0 {
			time.Sleep(remain)
		}
		return false
	}
	time.Sleep(d)
	return true
}

// printSummary writes the human-readable end-of-run report: the headline
// protocol metrics and one sample flight trace (preferring a partial write
// that marked replicas stale — the trace the paper's Section 4.2 story is
// about).
func printSummary(w *os.File, snap obs.Snapshot) {
	fmt.Fprintln(w, "--- obs summary ---")
	for _, c := range snap.Counters {
		if c.Value != 0 {
			fmt.Fprintf(w, "%-45s %d\n", c.Name, c.Value)
		}
	}
	for _, h := range snap.Histograms {
		if h.Hist.Count == 0 {
			continue
		}
		p50, p99 := h.Hist.Quantile(0.50), h.Hist.Quantile(0.99)
		if strings.HasSuffix(h.Name, "_ns") {
			fmt.Fprintf(w, "%-45s count=%d p50=%s p99=%s\n", h.Name, h.Hist.Count,
				time.Duration(p50), time.Duration(p99))
		} else {
			fmt.Fprintf(w, "%-45s count=%d p50=%d p99=%d\n", h.Name, h.Hist.Count, p50, p99)
		}
	}
	if tr := sampleTrace(snap.Traces); tr != nil {
		fmt.Fprintln(w, "--- sample flight trace ---")
		fmt.Fprint(w, expose.FormatTrace(tr))
	}
}

// transportLabel names the data plane a result ran on for the latency
// summary; sim-mode results predate the Net field, so empty means sim.
func transportLabel(res result) string {
	if res.Net == "" {
		return "sim"
	}
	return res.Net
}

// printLatencyGap writes the per-transport operation latency line to
// stderr and, when comparePath points at a previous run's JSON result,
// the ratio between the two runs' percentiles. Running the same workload
// once with -net sim and once with -net tcp -compare <sim.json> prints
// the sim-vs-TCP gap directly — the number the networked hot-path work
// drives toward 1.
func printLatencyGap(res result, comparePath string) {
	fmt.Fprintf(os.Stderr, "loadgen: latency[%s] read p50=%dµs p99=%dµs write p50=%dµs p99=%dµs (%.0f ops/s)\n",
		transportLabel(res), res.ReadP50us, res.ReadP99us, res.WriteP50us, res.WriteP99us, res.OpsPerSec)
	if comparePath == "" {
		return
	}
	raw, err := os.ReadFile(comparePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: -compare: %v\n", err)
		return
	}
	var base result
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: -compare %s: %v\n", comparePath, err)
		return
	}
	ratio := func(cur, prev int64) string {
		if prev <= 0 || cur <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2fx", float64(cur)/float64(prev))
	}
	fmt.Fprintf(os.Stderr, "loadgen: latency[%s] read p50=%dµs p99=%dµs write p50=%dµs p99=%dµs (%.0f ops/s)\n",
		transportLabel(base), base.ReadP50us, base.ReadP99us, base.WriteP50us, base.WriteP99us, base.OpsPerSec)
	fmt.Fprintf(os.Stderr, "loadgen: gap %s vs %s: read p50 %s p99 %s, write p50 %s p99 %s, throughput %s\n",
		transportLabel(res), transportLabel(base),
		ratio(res.ReadP50us, base.ReadP50us), ratio(res.ReadP99us, base.ReadP99us),
		ratio(res.WriteP50us, base.WriteP50us), ratio(res.WriteP99us, base.WriteP99us),
		func() string {
			if base.OpsPerSec <= 0 {
				return "n/a"
			}
			return fmt.Sprintf("%.2fx", res.OpsPerSec/base.OpsPerSec)
		}())
}

// sampleTrace picks the most interesting completed trace: a write with a
// stale-mark event if one exists, else any write, else any trace.
func sampleTrace(traces []obs.Trace) *obs.Trace {
	var anyWrite, any *obs.Trace
	for i := range traces {
		tr := &traces[i]
		if any == nil {
			any = tr
		}
		if tr.Kind != obs.OpWrite {
			continue
		}
		if anyWrite == nil {
			anyWrite = tr
		}
		for _, e := range tr.EventsSlice() {
			if e.Kind == obs.EvStaleMark {
				return tr
			}
		}
	}
	if anyWrite != nil {
		return anyWrite
	}
	return any
}

// opOutcomes pairs the read and write dispositions for one strategy in
// the report's strategy_outcomes map.
type opOutcomes struct {
	Reads  outcomes `json:"reads"`
	Writes outcomes `json:"writes"`
}

// attachStrategyOutcomes fills the per-strategy breakdown once the
// aggregate outcomes are summed. res.Strategy must already hold the
// canonical strategy name.
func attachStrategyOutcomes(res *result) {
	res.StrategyOutcomes = map[string]opOutcomes{
		res.Strategy: {Reads: res.ReadOutcomes, Writes: res.WriteOutcomes},
	}
}

// capacityFunc turns the -capacity flag into a coterie load function, or
// nil when the cluster is homogeneous.
func capacityFunc(spec string) (coterie.LoadFunc, error) {
	if spec == "" {
		return nil, nil
	}
	caps, err := daemon.ParseCapacities(spec)
	if err != nil {
		return nil, err
	}
	return func(id nodeset.ID) float64 {
		if c, ok := caps[id]; ok {
			return c
		}
		return 1
	}, nil
}

// zipfItemStreams builds one independent Zipfian item stream per worker
// when -zipf-items is on (nil otherwise), so the hottest items draw most
// of the traffic while workers stay deterministic and contention-free.
func zipfItemStreams(cfg config) ([]*workload.Zipf, error) {
	if !cfg.zipfItems {
		return nil, nil
	}
	z, err := workload.NewZipf(uint64(cfg.items), cfg.zipfTheta, cfg.seed)
	if err != nil {
		return nil, err
	}
	return z.Split(cfg.workers)
}

// pickItem chooses worker w's next item: pinned under -disjoint, Zipfian
// under -zipf-items, uniform otherwise.
func pickItem(cfg config, w int, rng *rand.Rand, zipf []*workload.Zipf) int {
	if cfg.disjoint {
		return w % cfg.items
	}
	if zipf != nil {
		return int(zipf[w].Next())
	}
	return rng.Intn(cfg.items)
}

func addOutcomes(dst *outcomes, src outcomes) {
	dst.OK += src.OK
	dst.Unavailable += src.Unavailable
	dst.Conflict += src.Conflict
	dst.TimedOut += src.TimedOut
	dst.Other += src.Other
}

// percentile returns the p-quantile of samples (nearest-rank); zero when
// no samples were collected.
func percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(p * float64(len(samples)-1))
	return samples[idx]
}

// mix64 is the splitmix64 output function, used to derive independent
// per-worker PRNG streams from the base seed.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
