// Sharded-mode loadgen: -shards N hashes a large keyspace (default one
// million keys) across N coteries served by the spawned coteried daemons
// and drives it through the smart capi client — cached shard map, direct
// routing, retry with jittered backoff, and optionally hedged reads. This
// is the harness for the horizontal-scale story: keys are drawn from a
// Zipfian (s≈1.0) popularity curve, per-shard throughput and p999 tails
// are first-class outputs, and -sweep guarantees every key in the
// keyspace is touched at least once so "≥1M distinct items" is a measured
// fact, not a configuration claim.
//
// One-copy checking at million-key scale: recording every key's history
// would cost more memory than the cluster itself, so -check-stride k
// samples the keyspace — every k-th key plus the 1024 hottest (Zipf rank
// is key order, so low keys are hot and contended, exactly where
// violations would appear). Ambiguous writes (capi.ErrAmbiguous, or an
// Unavailable/Error disposition) record as MaybeWrite wildcards; the
// smart client never resends those, which is what keeps the checked
// histories free of duplicate commits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"coterie/internal/capi"
	"coterie/internal/core"
	"coterie/internal/daemon"
	"coterie/internal/nodeset"
	"coterie/internal/obs"
	"coterie/internal/onecopy"
	"coterie/internal/replica"
	"coterie/internal/transport/tcpnet"
	"coterie/internal/workload"
)

// keyName renders key k as "k<decimal>" into buf, reusing its storage.
// The returned string is freshly allocated (map keys and wire frames own
// their bytes); buf only amortizes the digit formatting.
func keyName(buf []byte, k uint64) string {
	buf = append(buf[:0], 'k')
	return string(strconv.AppendUint(buf, k, 10))
}

// recTable is the lazy, striped one-copy recorder table. Stride-sampled
// keys (plus the hottest 1024) get a recorder on first touch; everything
// else reads/writes unrecorded. 64 stripes keep the lookup off any single
// lock in the worker hot path.
type recTable struct {
	stride   uint64
	itemSize int
	stripes  [64]recStripe
}

type recStripe struct {
	mu sync.Mutex
	m  map[uint64]*onecopy.Recorder
}

func newRecTable(itemSize, stride int) *recTable {
	t := &recTable{stride: uint64(stride), itemSize: itemSize}
	if t.stride == 0 {
		t.stride = 1
	}
	for i := range t.stripes {
		t.stripes[i].m = make(map[uint64]*onecopy.Recorder)
	}
	return t
}

// get returns key's recorder, creating it on first touch, or nil when the
// key falls outside the checked sample.
func (t *recTable) get(key uint64) *onecopy.Recorder {
	if t.stride > 1 && key >= 1024 && key%t.stride != 0 {
		return nil
	}
	s := &t.stripes[key&63]
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.m[key]
	if r == nil {
		r = onecopy.NewRecorder(make([]byte, t.itemSize))
		s.m[key] = r
	}
	return r
}

// check verifies every recorded history and returns how many keys were
// checked and how many violated one-copy serializability.
func (t *recTable) check() (checked, violations int) {
	var buf []byte
	for i := range t.stripes {
		s := &t.stripes[i]
		for key, rec := range s.m {
			checked++
			if err := rec.Check(); err != nil {
				violations++
				fmt.Fprintf(os.Stderr, "loadgen: ONE-COPY VIOLATION %s: %v\n", keyName(buf, key), err)
			}
		}
	}
	return checked, violations
}

func runShard(cfg config) error {
	// The sharded data plane only exists over TCP; -shards implies it.
	if cfg.netMode == "sim" {
		cfg.netMode = "tcp"
	}
	if cfg.netMode != "tcp" {
		return fmt.Errorf("-shards requires -net tcp (the sharded data plane is the networked one)")
	}
	if cfg.churn > 0 {
		return fmt.Errorf("-churn is not supported with -shards (shard maps do not version node churn yet)")
	}
	if cfg.latency > 0 {
		return fmt.Errorf("-latency is simulation-only (real TCP has real latency)")
	}
	if cfg.keyspace <= 0 {
		cfg.keyspace = 1_000_000
	}
	if cfg.checkStride <= 0 {
		cfg.checkStride = 1
	}
	strategy, err := core.ParseStrategy(cfg.strategy)
	if err != nil {
		return err
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("cannot self-spawn daemons: %w", err)
	}
	addrs, err := reservePorts(cfg.nodes)
	if err != nil {
		return err
	}
	book := make(map[nodeset.ID]string, cfg.nodes)
	for i, a := range addrs {
		book[nodeset.ID(i)] = a
	}

	procs := make([]*proc, cfg.nodes)
	for i := range procs {
		p, err := spawnDaemon(exe, nodeset.ID(i), book, cfg, false)
		if err != nil {
			for _, q := range procs[:i] {
				q.kill()
			}
			return err
		}
		procs[i] = p
	}
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()
	fmt.Fprintf(os.Stderr, "loadgen: %d coteried daemons up, %d shards rf=%d over %s\n",
		cfg.nodes, cfg.shards, cfg.rf, daemon.FormatCluster(book))

	stopPprof, err := servePprof(cfg.pprofPort)
	if err != nil {
		return err
	}
	defer stopPprof()

	reg := obs.Nop
	if cfg.obsOn {
		reg = obs.New()
	}
	topts := []tcpnet.Option{tcpnet.WithPipeline(cfg.pipeline)}
	if reg != obs.Nop {
		topts = append(topts, tcpnet.WithObs(reg))
	}
	if cfg.pool > 0 {
		topts = append(topts, tcpnet.WithPoolSize(cfg.pool))
	}
	cli := tcpnet.New(book, topts...)
	defer cli.Close()

	seeds := make([]nodeset.ID, cfg.nodes)
	for i := range seeds {
		seeds[i] = nodeset.ID(i)
	}
	ccfg := capi.ClientConfig{
		Self:        nodeset.ID(cfg.nodes + 1),
		Seeds:       seeds,
		OpTimeout:   cfg.timeout,
		CallTimeout: cfg.callTimeout,
		Hedge:       cfg.hedge,
		Obs:         reg,
		Seed:        uint64(cfg.seed),
		TraceSample: cfg.traceSample,
	}
	client, err := capi.NewClient(cli, ccfg)
	if err != nil {
		return err
	}
	refreshCtx, refreshCancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = client.Refresh(refreshCtx)
	refreshCancel()
	if err != nil {
		return fmt.Errorf("shard map bootstrap: %w", err)
	}
	pm := client.Map()
	fmt.Fprintf(os.Stderr, "loadgen: shard map v%d: %d shards rf=%d across %d nodes\n",
		pm.Version(), pm.NumShards(), pm.RF(), pm.Nodes().Len())

	parent, err := workload.NewZipf(uint64(cfg.keyspace), cfg.zipfTheta, cfg.seed)
	if err != nil {
		return err
	}
	zipfs, err := parent.Split(cfg.workers)
	if err != nil {
		return err
	}

	recs := newRecTable(cfg.itemSize, cfg.checkStride)
	touched := make([]uint64, (cfg.keyspace+63)/64)
	shardOps := make([]int64, pm.NumShards())

	stats := make([]workerStats, cfg.workers)
	deadline := time.Now().Add(cfg.duration)
	ctx := context.Background()
	// No deadline on the run context: -sweep is allowed to overrun
	// -duration until every key has been touched, and the smart client
	// already bounds each operation with its own OpTimeout.
	var wg sync.WaitGroup
	start := time.Now()
	pacer := workload.NewPacer(cfg.rate, start)

	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			z := zipfs[w]
			rng := rand.New(rand.NewSource(int64(mix64(uint64(cfg.seed) + uint64(w)*0x9e3779b97f4a7c15))))
			nbuf := make([]byte, 0, 24)
			// The worker's sweep slice of the keyspace, visited in order so
			// the union over workers covers every key exactly once.
			lo := uint64(w) * uint64(cfg.keyspace) / uint64(cfg.workers)
			hi := uint64(w+1) * uint64(cfg.keyspace) / uint64(cfg.workers)
			next := lo
			var op uint64
			for {
				inTime := time.Now().Before(deadline)
				if !inTime && (!cfg.sweep || next >= hi) {
					return
				}
				began, due := pacer.Wait(ctx)
				if !due {
					return
				}
				op++
				var key uint64
				switch {
				case cfg.sweep && next < hi && (!inTime || op%2 == 0):
					// Sweep key: alternates with Zipf draws during the
					// measurement window, takes over entirely after the
					// deadline so coverage completes quickly.
					key = next
					next++
				default:
					key = z.Next()
				}
				atomic.OrUint64(&touched[key>>6], 1<<(key&63))
				name := keyName(nbuf, key)
				atomic.AddInt64(&shardOps[pm.ShardOf(name)], 1)
				rec := recs.get(key)
				if rng.Float64() < cfg.readFrac {
					var opStart uint64
					if rec != nil {
						opStart = rec.Begin()
					}
					reply, err := client.Read(ctx, name)
					if err == nil {
						err = statusErr(reply.Status, reply.Detail)
					}
					st.readOut.add(err)
					if err == nil {
						if rec != nil {
							rec.EndRead(opStart, reply.Version, reply.Value)
						}
						st.reads++
						st.readLat = append(st.readLat, time.Since(began))
					} else {
						st.failures++
					}
				} else {
					length := 1 + rng.Intn(cfg.writeLen)
					data := make([]byte, length) // recorded histories own their bytes
					for i := range data {
						data[i] = byte('a' + rng.Intn(26))
					}
					u := replica.Update{Offset: rng.Intn(cfg.itemSize - length + 1), Data: data}
					var opStart uint64
					if rec != nil {
						opStart = rec.Begin()
					}
					reply, err := client.Write(ctx, name, u)
					werr := err
					if werr == nil {
						werr = statusErr(reply.Status, reply.Detail)
					}
					st.writeOut.add(werr)
					switch {
					case err == nil && reply.Status == capi.StatusOK:
						if rec != nil {
							rec.EndWrite(opStart, reply.Version, u)
						}
						st.writes++
						st.writeLat = append(st.writeLat, time.Since(began))
					case err == nil && reply.Status == capi.StatusConflict:
						// Clean abort surfaced after retries: never applied.
						st.conflicts++
					case err == nil || errors.Is(err, capi.ErrAmbiguous):
						// Unavailable/Error disposition or a failed RPC: the
						// commit may have begun; the checker must allow both.
						if rec != nil {
							rec.EndMaybeWrite(opStart, u)
						}
						st.failures++
					case errors.Is(err, core.ErrConflict):
						st.conflicts++
					default:
						// Clean client-side failure (routing, deadline between
						// attempts, conflict exhaustion): nothing dispatched
						// that could still commit, nothing recorded.
						st.failures++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	hedgeOn := cfg.hedge
	res := result{
		Nodes: cfg.nodes, Items: cfg.keyspace, Workers: cfg.workers,
		ReadFrac:   cfg.readFrac,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Seed:       cfg.seed,
		Obs:        cfg.obsOn,
		Batch:      cfg.batch,
		Strategy:   strategy.String(),
		Capacity:   cfg.capacity,
		Affinity:   cfg.affinity,
		BatchProp:  cfg.batchProp,
		RateTarget: cfg.rate,
		ElapsedSec: elapsed.Seconds(),
		Net:        "tcp",
		Pipeline:   &cfg.pipeline,
		Shards:     pm.NumShards(),
		RF:         pm.RF(),
		Keyspace:   cfg.keyspace,
		ZipfTheta:  cfg.zipfTheta,
		Hedge:      &hedgeOn,
	}
	if cfg.slowRead > 0 && cfg.slowNode >= 0 {
		res.SlowRead = fmt.Sprintf("node %d +%s", cfg.slowNode, cfg.slowRead)
	}
	var readLat, writeLat []time.Duration
	for i := range stats {
		st := &stats[i]
		res.Reads += st.reads
		res.Writes += st.writes
		res.Conflicts += st.conflicts
		res.Failures += st.failures
		addOutcomes(&res.ReadOutcomes, st.readOut)
		addOutcomes(&res.WriteOutcomes, st.writeOut)
		readLat = append(readLat, st.readLat...)
		writeLat = append(writeLat, st.writeLat...)
	}
	res.Ops = res.Reads + res.Writes
	res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	res.ReadP50us = percentile(readLat, 0.50).Microseconds()
	res.ReadP99us = percentile(readLat, 0.99).Microseconds()
	res.ReadP999us = percentile(readLat, 0.999).Microseconds()
	res.WriteP50us = percentile(writeLat, 0.50).Microseconds()
	res.WriteP99us = percentile(writeLat, 0.99).Microseconds()
	res.WriteP999us = percentile(writeLat, 0.999).Microseconds()
	attachStrategyOutcomes(&res)

	for _, word := range touched {
		res.DistinctKeys += bits.OnesCount64(word)
	}
	res.PerShardOps = shardOps
	cs := client.Stats()
	res.Client = &cs

	checked, violations := recs.check()
	res.CheckedKeys = checked
	res.OneCopyViolations = &violations
	if violations == 0 {
		fmt.Fprintf(os.Stderr, "loadgen: one-copy serializability verified on %d sampled keys (%d distinct keys, %d ops)\n",
			checked, res.DistinctKeys, res.Ops)
	}
	fmt.Fprintf(os.Stderr, "loadgen: client retries=%d hedges=%d hedge_wins=%d hedge_canceled=%d wrong_shard=%d map_refresh=%d traces=%d\n",
		cs.Retries, cs.Hedges, cs.HedgeWins, cs.HedgeCanceled, cs.WrongShard, cs.MapRefresh, cs.TracesSampled)
	printShardSpread(os.Stderr, shardOps)

	if reg != obs.Nop {
		snap := reg.Snapshot()
		res.Metrics = make(map[string]int64, len(snap.Counters))
		for _, c := range snap.Counters {
			if c.Value != 0 {
				res.Metrics[c.Name] = c.Value
			}
		}
		printSummary(os.Stderr, snap)
	}
	if ccs := clusterScrape(procs); ccs != nil {
		res.ClusterMetrics = nonZeroCounters(ccs.Counters)
	}
	printLatencyGap(res, cfg.compare)

	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(res); err != nil {
		return err
	}
	if violations > 0 {
		return fmt.Errorf("%d one-copy serializability violations", violations)
	}
	return nil
}

// printShardSpread summarizes per-shard load balance on stderr: min, max,
// and the max/mean imbalance factor.
func printShardSpread(w *os.File, shardOps []int64) {
	if len(shardOps) == 0 {
		return
	}
	var total, max int64
	min := shardOps[0]
	for _, n := range shardOps {
		total += n
		if n > max {
			max = n
		}
		if n < min {
			min = n
		}
	}
	mean := float64(total) / float64(len(shardOps))
	imb := 0.0
	if mean > 0 {
		imb = float64(max) / mean
	}
	fmt.Fprintf(w, "loadgen: shard spread: %d shards, ops min=%d max=%d mean=%.0f (max/mean %.2fx)\n",
		len(shardOps), min, max, mean, imb)
}
