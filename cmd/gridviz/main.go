// Command gridviz renders the logical structures of the grid protocol:
// the grid layouts of the paper's Figures 1 and 2 and the availability
// state diagram of Figure 3.
//
// Usage:
//
//	gridviz -n 14          # Figure 1: the grid for N = 14
//	gridviz -n 3           # Figure 2: the grid for N = 3
//	gridviz -n 9 -chain    # Figure 3: the dynamic-grid Markov chain
//	gridviz -n 14 -quorum 5  # a write quorum picked for coordinator hint 5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"coterie/internal/coterie"
	"coterie/internal/markov"
	"coterie/internal/nodeset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gridviz: ")
	var (
		n      = flag.Int("n", 14, "number of replicas")
		chain  = flag.Bool("chain", false, "render the Figure 3 Markov chain instead of the grid")
		lambda = flag.Float64("lambda", 1, "failure rate (chain mode)")
		mu     = flag.Float64("mu", 19, "repair rate (chain mode)")
		quorum = flag.Int("quorum", -1, "also show the write quorum picked for this hint")
	)
	flag.Parse()
	if *n < 1 {
		log.Fatalf("need at least 1 replica, got %d", *n)
	}

	if *chain {
		out, err := (markov.DynamicGridModel{N: *n, Lambda: *lambda, Mu: *mu}).RenderChain()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.WriteString(out)
		return
	}

	V := nodeset.Range(1, nodeset.ID(*n+1)) // 1-based names, as in the paper's figures
	g := coterie.Grid{}
	os.Stdout.WriteString(g.Render(V))

	if *quorum >= 0 {
		wq, ok := g.WriteQuorum(V, V, *quorum)
		if !ok {
			log.Fatal("no write quorum exists")
		}
		rq, _ := g.ReadQuorum(V, V, *quorum)
		fmt.Printf("\nread quorum (hint %d):  %v  (%d nodes)\n", *quorum, rq, rq.Len())
		fmt.Printf("write quorum (hint %d): %v  (%d nodes)\n", *quorum, wq, wq.Len())
	}
}
