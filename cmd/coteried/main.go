// Command coteried hosts one coterie replica node as a network daemon:
// the replica protocol, a co-located coordinator per item, and the capi
// client API, all served by the tcpnet transport. A cluster is N coteried
// processes sharing one address book; any of them accepts client reads,
// writes and epoch checks for any item.
//
//	coteried -node 0 -cluster 0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002 -items 4
//
// On startup the daemon prints "READY <node> <addr>" to stdout once it is
// serving; spawning harnesses (cmd/loadgen -net tcp, scripts/benchnet)
// wait for that line. SIGINT/SIGTERM shut it down gracefully.
//
// A restarted daemon has lost its in-memory replica state; restart it
// with -recovering so it rejoins as the paper's recovering replica
// (excluded from quorums until an epoch change readmits it and
// propagation rebuilds its value) instead of silently serving stale data.
// See internal/daemon for the full flag set and behavior.
package main

import (
	"fmt"
	"os"

	"coterie/internal/daemon"
)

func main() {
	if err := daemon.RunMain(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coteried:", err)
		os.Exit(1)
	}
}
