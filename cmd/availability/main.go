// Command availability regenerates the paper's Table 1 and related
// availability/quorum-size comparisons.
//
// Usage:
//
//	availability                 # Table 1 exactly as in the paper
//	availability -lambda 1 -mu 9 # different failure/repair rates
//	availability -n 9,12,15      # different replica counts
//	availability -quorums        # quorum sizes per protocol (Section 1)
//	availability -voting         # dynamic voting / majority comparison
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"coterie/internal/coterie"
	"coterie/internal/markov"
	"coterie/internal/nodeset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("availability: ")
	var (
		lambda   = flag.Float64("lambda", 1, "per-node failure rate")
		mu       = flag.Float64("mu", 19, "per-node repair rate")
		nodesArg = flag.String("n", "9,12,15,16,20,24,30", "comma-separated replica counts")
		quorums  = flag.Bool("quorums", false, "print quorum sizes per protocol instead")
		voting   = flag.Bool("voting", false, "print the voting-protocol comparison instead")
		sweep    = flag.Bool("sweep", false, "print an unavailability-vs-reliability sweep instead")
		reads    = flag.Bool("reads", false, "print dynamic-grid read vs write unavailability instead")
		ratio    = flag.Bool("ratio", false, "print the grid aspect-parameter (k) tradeoff instead")
		outage   = flag.Bool("outage", false, "print mean outage durations alongside unavailability instead")
	)
	flag.Parse()

	counts, err := parseCounts(*nodesArg)
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case *quorums:
		printQuorumSizes(counts)
	case *voting:
		printVotingComparison(counts, *lambda, *mu)
	case *sweep:
		printSweep(counts[0])
	case *reads:
		printReads(counts, *lambda, *mu)
	case *ratio:
		printRatio(counts[0], *mu/(*lambda+*mu))
	case *outage:
		printOutage(counts, *lambda, *mu)
	default:
		printTable1(counts, *lambda, *mu)
	}
}

func printSweep(n int) {
	points, err := markov.Sweep(n, []float64{1, 3, 9, 19, 49, 99, 199})
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.WriteString(markov.FormatSweep(n, points))
}

// printOutage shows how often the dynamic grid blocks and for how long at
// a stretch (time unit: mean node up-time, 1/lambda).
func printOutage(counts []int, lambda, mu float64) {
	fmt.Printf("Dynamic grid outages (lambda=%g, mu=%g)\n\n", lambda, mu)
	fmt.Println("N      unavailability  mean-outage   outages-per-lifetime")
	for _, n := range counts {
		m := markov.DynamicGridModel{N: n, Lambda: lambda, Mu: mu}
		u, err := m.UnavailabilityFloat(0)
		if err != nil {
			log.Fatal(err)
		}
		d, err := m.MeanOutageDuration()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-15.4g %-13.4g %.4g\n", n, u, d, u/d)
	}
}

func printReads(counts []int, lambda, mu float64) {
	fmt.Printf("Dynamic grid unavailability (lambda=%g, mu=%g): reads survive blocked\n", lambda, mu)
	fmt.Println("epochs that still cover every grid column.")
	fmt.Println()
	fmt.Println("N      write         read")
	for _, n := range counts {
		w, r, err := markov.DynamicGridReadModel{N: n, Lambda: lambda, Mu: mu}.UnavailabilitiesFloat(0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-13.4g %.4g\n", n, w, r)
	}
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad replica count %q: %v", part, err)
		}
		if n < 4 {
			return nil, fmt.Errorf("replica count %d below the dynamic model's minimum of 4", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func printTable1(counts []int, lambda, mu float64) {
	params := markov.Table1Params{NodeCounts: counts, Lambda: lambda, Mu: mu}
	rows, err := markov.Table1(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Write unavailability, p = %.4g (lambda=%g, mu=%g)\n\n", params.P(), lambda, mu)
	os.Stdout.WriteString(markov.FormatTable1(rows))
}

func printQuorumSizes(counts []int) {
	fmt.Println("Quorum sizes (paper, Section 1): grid read = sqrt(N), grid write = 2*sqrt(N)-1,")
	fmt.Println("majority = floor(N/2)+1, HQC ~ N^0.63, wheel = 2, ROWA write = N.")
	fmt.Println()
	fmt.Println("N      grid-read  grid-write  majority  hqc   wheel  rowa-write")
	for _, n := range counts {
		V := nodeset.Range(0, nodeset.ID(n))
		g := coterie.Grid{}
		rq, _ := g.ReadQuorum(V, V, 0)
		wq, _ := g.WriteQuorum(V, V, 0)
		_, maj := coterie.Majority{}.Thresholds(n)
		hq, _ := coterie.Hierarchical{}.ReadQuorum(V, V, 0)
		wh, _ := coterie.Wheel{}.WriteQuorum(V, V, 0)
		fmt.Printf("%-6d %-10d %-11d %-9d %-5d %-6d %d\n", n, rq.Len(), wq.Len(), maj, hq.Len(), wh.Len(), n)
	}
}

// printRatio sweeps the grid aspect parameter k for one N: read quorum
// size against write availability (paper, Section 5, requirement 2).
func printRatio(n int, p float64) {
	fmt.Printf("Grid aspect parameter k (rows/columns), N = %d, p = %.4g\n", n, p)
	fmt.Println("Increasing k: cheaper reads, less available writes (paper, Section 5).")
	fmt.Println()
	fmt.Println("k        shape    read-quorum  write-quorum  write-unavailability")
	V := nodeset.Range(0, nodeset.ID(n))
	for _, k := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		g := coterie.Grid{Ratio: k}
		shape := coterie.DefineGridRatio(n, k)
		rq, ok1 := g.ReadQuorum(V, V, 0)
		wq, ok2 := g.WriteQuorum(V, V, 0)
		if !ok1 || !ok2 {
			log.Fatalf("k=%g: no quorum", k)
		}
		u := markov.StaticGridWriteUnavailability(shape, p, false)
		fmt.Printf("%-8.3g %-8s %-12d %-13d %.4g\n", k, shape, rq.Len(), wq.Len(), u)
	}
}

func printVotingComparison(counts []int, lambda, mu float64) {
	p := mu / (lambda + mu)
	fmt.Printf("Write unavailability comparison, p = %.4g\n\n", p)
	fmt.Println("N      static-grid   static-majority  dyn-voting    dyn-linear    dyn-grid")
	for _, n := range counts {
		_, sg := markov.BestStaticGrid(n, p, true)
		sm := 1 - markov.StaticMajorityWriteAvailability(n, p)
		dv, err := markov.DynamicVotingModel{N: n, Lambda: lambda, Mu: mu}.UnavailabilityFloat(0)
		if err != nil {
			log.Fatal(err)
		}
		dl, err := markov.DynamicVotingModel{N: n, Lambda: lambda, Mu: mu, Linear: true}.UnavailabilityFloat(0)
		if err != nil {
			log.Fatal(err)
		}
		dg, err := markov.DynamicGridModel{N: n, Lambda: lambda, Mu: mu}.UnavailabilityFloat(0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-13.4g %-16.4g %-13.4g %-13.4g %.4g\n", n, sg, sm, dv, dl, dg)
	}
}
