// Command coteriesim runs the discrete-event availability simulator: the
// site model's failure/repair process with epoch checking, under either the
// paper's Figure 3 transition rule or exact evaluation of a coterie rule.
//
// Usage:
//
//	coteriesim -n 9 -lambda 1 -mu 19 -horizon 1e6
//	coteriesim -n 9 -model protocol -rule grid
//	coteriesim -n 9 -model protocol -rule majority -check-every 5
//	coteriesim -n 9 -seeds 10          # averages over 10 seeds
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"coterie/internal/coterie"
	"coterie/internal/markov"
	"coterie/internal/obs"
	"coterie/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coteriesim: ")
	var (
		n          = flag.Int("n", 9, "number of replicas")
		lambda     = flag.Float64("lambda", 1, "per-node failure rate")
		mu         = flag.Float64("mu", 19, "per-node repair rate")
		horizon    = flag.Float64("horizon", 1e6, "simulated time units")
		modelName  = flag.String("model", "paper", `transition model: "paper" (Figure 3) or "protocol" (exact rule)`)
		ruleName   = flag.String("rule", "grid", `coterie rule for -model protocol: grid, grid-strict, majority, hierarchical`)
		checkEvery = flag.Float64("check-every", 0, "epoch-check period (0 = after every event)")
		seeds      = flag.Int("seeds", 1, "number of independent seeds to average")
		compare    = flag.Bool("compare", true, "also print the analytic Figure 3 value")
		obsOn      = flag.Bool("obs", true, "record obs counters and print them to stderr at exit")
	)
	flag.Parse()

	reg := obs.Nop
	if *obsOn {
		reg = obs.New()
	}
	cfg := sim.Config{
		N:          *n,
		Lambda:     *lambda,
		Mu:         *mu,
		Horizon:    *horizon,
		CheckEvery: *checkEvery,
		Obs:        reg,
	}
	switch *modelName {
	case "paper":
		cfg.Model = sim.ModelPaper
	case "protocol":
		cfg.Model = sim.ModelProtocol
	default:
		log.Fatalf("unknown model %q", *modelName)
	}
	switch *ruleName {
	case "grid":
		cfg.Rule = coterie.Grid{}
	case "grid-strict":
		cfg.Rule = coterie.Grid{Strict: true}
	case "majority":
		cfg.Rule = coterie.Majority{}
	case "hierarchical":
		cfg.Rule = coterie.Hierarchical{}
	default:
		log.Fatalf("unknown rule %q", *ruleName)
	}

	var sumW, sumR float64
	var blocks, changes int
	for s := 0; s < *seeds; s++ {
		cfg.Seed = int64(s + 1)
		res, err := sim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sumW += res.WriteUnavailFrac
		sumR += res.ReadUnavailFrac
		blocks += res.Blocks
		changes += res.EpochChanges
	}
	k := float64(*seeds)
	fmt.Printf("model=%s rule=%s N=%d lambda=%g mu=%g horizon=%g check-every=%g seeds=%d\n",
		*modelName, *ruleName, *n, *lambda, *mu, *horizon, *checkEvery, *seeds)
	fmt.Printf("write unavailability: %.6g\n", sumW/k)
	fmt.Printf("read  unavailability: %.6g\n", sumR/k)
	fmt.Printf("epoch changes: %d   blocks: %d (totals across seeds)\n", changes, blocks)

	if *compare && *n >= 4 {
		analytic, err := markov.DynamicGridModel{N: *n, Lambda: *lambda, Mu: *mu}.UnavailabilityFloat(0)
		if err == nil {
			fmt.Printf("analytic Figure 3 value:  %.6g\n", analytic)
		}
	}

	if reg != obs.Nop {
		fmt.Fprintln(os.Stderr, "--- obs summary (totals across seeds) ---")
		for _, c := range reg.Snapshot().Counters {
			fmt.Fprintf(os.Stderr, "%-30s %d\n", c.Name, c.Value)
		}
	}
}
