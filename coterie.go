// Package coterie is a Go implementation of dynamic structured coterie
// protocols for replicated objects, reproducing Rabinovich & Lazowska,
// "Improving Fault Tolerance and Supporting Partial Writes in Structured
// Coterie Protocols for Replicated Objects" (SIGMOD 1992).
//
// The library provides:
//
//   - the dynamic replication protocol itself (epoch-based quorum
//     adjustment, partial writes with stale marking, asynchronous update
//     propagation) over pluggable coterie rules — grid, majority voting,
//     hierarchical quorum consensus, read-one/write-all;
//   - a simulated fail-stop network with crashes and partitions to run
//     clusters in-process;
//   - the static grid protocol baseline (Cheung, Ammar & Ahamad);
//   - the paper's availability analysis: exact Markov-chain solutions for
//     the dynamic grid (Table 1), closed forms for the static protocols,
//     and a discrete-event simulator for validation and ablations.
//
// # Quick start
//
//	cluster, err := coterie.NewCluster(9, "mydata", nil, coterie.Options{})
//	if err != nil { ... }
//	defer cluster.Close()
//
//	co := cluster.Coordinator(0)
//	version, err := co.Write(ctx, coterie.Update{Offset: 0, Data: []byte("hello")})
//	value, version, err := cluster.Coordinator(5).Read(ctx)
//
// Crash nodes with cluster.Crash, let the epoch adapt with
// cluster.CheckEpoch (or StartEpochChecker for a periodic pulse), and the
// data item stays available as long as a write quorum of the current epoch
// survives — down to a handful of nodes, where the static protocols would
// have blocked long before.
package coterie

import (
	"math/big"
	"math/rand"
	"time"

	"coterie/internal/core"
	ic "coterie/internal/coterie"
	"coterie/internal/markov"
	"coterie/internal/nodeset"
	"coterie/internal/replica"
	"coterie/internal/sim"
	"coterie/internal/staticgrid"
	"coterie/internal/transport"
	"coterie/internal/wire"
)

// NodeID names a node. Node names are linearly ordered; the protocols use
// the order to impose logical structure on epoch lists.
type NodeID = nodeset.ID

// Set is an ordered set of node IDs.
type Set = nodeset.Set

// NewSet builds a Set from IDs.
func NewSet(ids ...NodeID) Set { return nodeset.New(ids...) }

// Update is a partial write: Data replaces the bytes at Offset, extending
// the item if needed.
type Update = replica.Update

// Rule is a coterie rule: it decides and constructs read/write quorums over
// an arbitrary ordered node set.
type Rule = ic.Rule

// GridRule returns the grid coterie rule (paper, Section 5) with the
// partial-column optimization.
func GridRule() Rule { return ic.Grid{} }

// StrictGridRule returns the grid rule without the partial-column
// optimization — the rule assumed by the paper's availability analysis.
func StrictGridRule() Rule { return ic.Grid{Strict: true} }

// MajorityRule returns one-vote-per-node majority voting (Gifford).
func MajorityRule() Rule { return ic.Majority{} }

// GridRuleWithRatio returns the grid rule with the paper's aspect
// parameter k ≈ rows/columns: larger k gives cheaper reads and lower write
// availability (Section 5). Every node of a cluster must use the same k.
func GridRuleWithRatio(k float64) Rule { return ic.Grid{Ratio: k} }

// HierarchicalRule returns Kumar's hierarchical quorum consensus with the
// default ternary branching.
func HierarchicalRule() Rule { return ic.Hierarchical{} }

// WheelRule returns the wheel coterie: constant-size {hub, spoke} quorums
// with a full-rim fallback — minimal quorums, maximal hub load.
func WheelRule() Rule { return ic.Wheel{} }

// ROWARule returns read-one/write-all.
func ROWARule() Rule { return ic.ROWA{} }

// Options configures clusters and coordinators. See core.Options for field
// documentation; the zero value selects the grid rule and sensible
// timeouts.
type Options = core.Options

// ReplicaConfig tunes per-replica behavior (lock leases, update-log size,
// propagation cadence).
type ReplicaConfig = replica.Config

// Cluster is a complete in-process replicated system for one data item.
type Cluster = core.Cluster

// Coordinator executes reads, writes and epoch checks from one node.
type Coordinator = core.Coordinator

// CheckResult reports an epoch-checking outcome.
type CheckResult = core.CheckResult

// ErrUnavailable is returned when an operation cannot reach a quorum with
// a current replica.
var ErrUnavailable = core.ErrUnavailable

// ErrConflict is returned when an operation lost lock races and should be
// retried.
var ErrConflict = core.ErrConflict

// NewCluster creates an n-node cluster (IDs 0..n-1) replicating one data
// item with the given initial value.
func NewCluster(n int, item string, initial []byte, opts Options) (*Cluster, error) {
	return core.NewCluster(n, item, initial, opts)
}

// Group is a multi-item cluster with amortized (grouped) epoch checking —
// the paper's Section 2 optimization for items replicated on the same
// nodes.
type Group = core.Group

// NewGroup creates n nodes each replicating every named item.
func NewGroup(n int, items []string, initial map[string][]byte, opts Options) (*Group, error) {
	return core.NewGroup(n, items, initial, opts)
}

// ElectedCluster is a Cluster whose epoch-check initiator is chosen by
// bully election (paper, Section 4.3).
type ElectedCluster = core.ElectedCluster

// NewElectedCluster creates a cluster with electors on every node.
func NewElectedCluster(n int, item string, initial []byte, opts Options) (*ElectedCluster, error) {
	return core.NewElectedCluster(n, item, initial, opts)
}

// --- Static baseline (Cheung, Ammar & Ahamad) ---

// StaticCluster is a cluster running the conventional static grid protocol
// (total writes, no epochs) — the baseline the paper's Table 1 compares
// against.
type StaticCluster = staticgrid.Cluster

// StaticOptions configures the static baseline.
type StaticOptions = staticgrid.Options

// ErrStaticUnavailable is the static protocol's unavailability error.
var ErrStaticUnavailable = staticgrid.ErrUnavailable

// NewStaticCluster creates an n-node cluster under the static grid
// protocol.
func NewStaticCluster(n int, item string, initial []byte, opts StaticOptions, rcfg ReplicaConfig) (*StaticCluster, error) {
	return staticgrid.NewCluster(n, item, initial, opts, rcfg)
}

// --- Availability analysis (paper, Section 6) ---

// Table1Row is one row of the paper's Table 1.
type Table1Row = markov.Table1Row

// Table1 recomputes the paper's Table 1 (static vs dynamic grid write
// unavailability at p = 0.95).
func Table1() ([]Table1Row, error) {
	return markov.Table1(markov.PaperTable1Params())
}

// FormatTable1 renders Table 1 rows in the paper's layout.
func FormatTable1(rows []Table1Row) string { return markov.FormatTable1(rows) }

// DynamicGridUnavailability solves the Figure 3 Markov chain for n
// replicas with failure rate lambda and repair rate mu, in high-precision
// arithmetic.
func DynamicGridUnavailability(n int, lambda, mu float64) (*big.Float, error) {
	return markov.DynamicGridModel{N: n, Lambda: lambda, Mu: mu}.Unavailability(0)
}

// StaticGridUnavailability returns the static grid protocol's write
// unavailability for its best exact factorization at per-node availability
// p.
func StaticGridUnavailability(n int, p float64) float64 {
	_, u := markov.BestStaticGrid(n, p, true)
	return u
}

// MeanOutageDuration returns the expected length of a dynamic-grid write
// outage (time from a 3-node epoch losing its first member until an epoch
// re-forms), in the same time unit as 1/lambda.
func MeanOutageDuration(n int, lambda, mu float64) (float64, error) {
	return markov.DynamicGridModel{N: n, Lambda: lambda, Mu: mu}.MeanOutageDuration()
}

// --- Simulation ---

// SimConfig parameterizes an availability simulation; see sim.Config.
type SimConfig = sim.Config

// SimResult aggregates a simulation run; see sim.Result.
type SimResult = sim.Result

// Simulate runs the discrete-event availability simulator.
func Simulate(cfg SimConfig) (SimResult, error) { return sim.Run(cfg) }

// DefaultCallTimeout is the default per-round RPC timeout used by
// coordinators when Options.CallTimeout is zero.
const DefaultCallTimeout = 2 * time.Second

// --- Wire transport ---

// TransportOption configures a cluster's simulated network.
type TransportOption = transport.Option

// WithWireCodec forces every protocol message through the binary wire
// codec, proving the deployment path over a byte-oriented network. Pass it
// in Options.Transport.
func WithWireCodec() TransportOption {
	return transport.WithCodec(
		func(m transport.Message) ([]byte, error) { return wire.Marshal(m) },
		func(b []byte) (transport.Message, error) { return wire.Unmarshal(b) },
	)
}

// WithLatency injects per-message delays sampled by fn.
func WithLatency(fn func(r *rand.Rand) time.Duration) TransportOption {
	return transport.WithLatency(fn)
}

// MarshalMessage encodes a protocol message with the wire codec.
func MarshalMessage(msg any) ([]byte, error) { return wire.Marshal(msg) }

// UnmarshalMessage decodes a wire-encoded protocol message.
func UnmarshalMessage(b []byte) (any, error) { return wire.Unmarshal(b) }
