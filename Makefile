GO ?= go

.PHONY: all build test vet race bench bench-smoke bench-loadgen ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs every benchmark for a single iteration — a fast compile-
# and-run sanity pass, not a measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# bench-loadgen is a short closed-loop data-plane smoke run (see README
# "Load generator"): it proves cmd/loadgen builds and completes a mixed
# read/partial-write run, not a measurement. Full methodology in
# BENCH_2.json.
bench-loadgen:
	$(GO) run ./cmd/loadgen -duration 1s -items 8 -workers 4 -disjoint

# bench produces benchstat-comparable numbers for the tracked hot paths
# (see README "Benchmarks" for methodology).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1Dynamic|BenchmarkSimAvailability' -benchmem -count=5 -benchtime=1x .
	$(GO) test -run '^$$' -bench 'BenchmarkQuorumMessages' -benchmem -count=5 -benchtime=50x .

ci: vet build race bench-smoke bench-loadgen
