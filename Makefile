GO ?= go

.PHONY: all build test vet race bench bench-smoke bench-loadgen bench-obs bench-batch bench-net bench-shard bench-shard-smoke bench-trace bench-quorum bench-quorum-smoke profile-net check-obs-imports check-allocs check-admin fuzz-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs every benchmark for a single iteration — a fast compile-
# and-run sanity pass, not a measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# bench-loadgen is a short closed-loop data-plane smoke run (see README
# "Load generator"): it proves cmd/loadgen builds and completes a mixed
# read/partial-write run, not a measurement. Full methodology in
# BENCH_2.json.
bench-loadgen:
	$(GO) run ./cmd/loadgen -duration 1s -items 8 -workers 4 -disjoint

# bench produces benchstat-comparable numbers for the tracked hot paths
# (see README "Benchmarks" for methodology).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkTable1Dynamic|BenchmarkSimAvailability' -benchmem -count=5 -benchtime=1x .
	$(GO) test -run '^$$' -bench 'BenchmarkQuorumMessages' -benchmem -count=5 -benchtime=50x .

# bench-obs measures the observability overhead — loadgen with the full
# registry + flight recorder vs obs.Nop, at GOMAXPROCS=1 and 4 — and writes
# BENCH_3.json. The budget is 5% (DESIGN.md §7).
bench-obs:
	$(GO) run ./scripts/benchobs -duration 2s -trials 3

# bench-batch measures the group-commit write pipeline — loadgen with
# batching off vs on, contended and disjoint, at GOMAXPROCS=1 and 4 — and
# writes BENCH_4.json. Gates: >= 1.5x contended at GOMAXPROCS=4, no
# meaningful disjoint regression (DESIGN.md §8).
bench-batch:
	$(GO) run ./scripts/benchbatch -duration 2s -trials 3

# bench-net measures the networked hot path — tcp-pipelined loadgen vs the
# BENCH_5 baseline, a 1->4 core scaling curve at 8 workers per core, a
# crash/recovery churn run, and a sim run for the sim-vs-TCP gap — and
# writes BENCH_6.json. Gates: >= 3x BENCH_5 tcp-pipelined ops/sec at
# GOMAXPROCS=1, monotone non-decreasing scaling, zero one-copy violations
# under churn (DESIGN.md §10, EXPERIMENTS.md BENCH_6).
bench-net:
	$(GO) run ./scripts/benchnet -duration 3s -trials 3

# bench-shard measures the horizontally sharded data plane — a million-key
# Zipfian sweep over 4 daemons with stride-sampled one-copy checking, an
# unsharded-vs-sharded throughput comparison on the same hardware, and a
# hedged-reads run against a deliberately slow daemon — and writes
# BENCH_7.json. Gates: full keyspace coverage with zero violations,
# >= 1.8x sharded speedup, >= 30% read-p99 cut from hedging (DESIGN.md
# §11, EXPERIMENTS.md BENCH_7).
bench-shard:
	$(GO) run ./scripts/benchshard -duration 5s -trials 2

# bench-shard-smoke is the CI-sized version: a 2000-key sweep plus the
# hedging section, gating coverage, zero violations and the p99 cut; no
# report file.
bench-shard-smoke:
	$(GO) run ./scripts/benchshard -smoke

# bench-trace measures the observability-plane overhead on the networked
# data path — sharded TCP loadgen dark vs with per-daemon admin endpoints,
# 1-in-16 trace sampling and the post-run cluster scrape — plus a hedged
# run that must produce non-zero hedge-attribution counters, and writes
# BENCH_8.json. Gate: <= 2% overhead (DESIGN.md §12).
bench-trace:
	$(GO) run ./scripts/benchtrace -duration 3s -trials 3

# bench-quorum measures the capacity-optimized quorum strategies — a
# strategy x workload loadgen matrix (uniform / zipf / slow-member /
# 95%-read) at GOMAXPROCS=4 plus the predicted-vs-measured availability
# table at the paper's Table 1 operating point — and writes BENCH_9.json.
# Gates: optimized >= 1.15x load-aware ops/sec under tail injection at
# equal-or-better read p99; read-dominant read p99 <= 0.8x load-aware's
# on the 95/5 mix (DESIGN.md §13, EXPERIMENTS.md BENCH_9).
bench-quorum:
	$(GO) run ./scripts/benchquorum -duration 3s -trials 3

# bench-quorum-smoke is the CI-sized version: only the two gated
# scenarios over the strategies the gates compare, with a short
# availability horizon and no report file; fails on a gate miss.
bench-quorum-smoke:
	$(GO) run ./scripts/benchquorum -smoke

# check-admin smokes the admin plane: an in-process 3-daemon cluster with
# admin endpoints, fully-sampled client traffic, every route on every
# daemon, and an aggregator timeline that spans more than one node.
check-admin:
	$(GO) run ./scripts/checkadmin

# profile-net captures a CPU profile of the networked hot path: a
# tcp-pipelined loadgen run serves pprof on 127.0.0.1:6161 (its daemons on
# 6162+) and the client process is sampled mid-run. The flat top lands on
# stdout; the raw profile stays under $$HOME/pprof for `go tool pprof`.
profile-net:
	$(GO) build -o /tmp/coterie-loadgen ./cmd/loadgen
	/tmp/coterie-loadgen -duration 18s -nodes 3 -items 8 -workers 8 -disjoint \
		-read-frac 0.5 -net tcp -pipeline=true -pprof 6161 >/dev/null & \
	sleep 3 && $(GO) tool pprof -top -nodecount 25 \
		-seconds 10 http://127.0.0.1:6161/debug/pprof/profile; wait

# check-allocs runs the steady-state allocation gates: the combiner's
# submit/drain machinery, the batched-propagation capture path, the mux
# dispatch and wire encode hot paths, the tcpnet frame codec, and the
# weighted quorum pick (alias-table sampling in coterie and the
# coordinator's pick wrapper) must not allocate per operation (they gate
# with testing.AllocsPerRun and skip themselves under -race).
check-allocs:
	$(GO) test -run 'TestCombinerDrainDoesNotAllocate' ./internal/core/ -v -count=1 | grep -E 'PASS|FAIL|allocates' || exit 1
	$(GO) test -run 'TestCaptureDataDoesNotAllocate' ./internal/replica/ -v -count=1 | grep -E 'PASS|FAIL|allocates' || exit 1
	$(GO) test -run 'TestMuxDispatchDoesNotAllocate|TestMulticastFuncAllocs' ./internal/transport/ -v -count=1 | grep -E 'PASS|FAIL|allocates' || exit 1
	$(GO) test -run 'TestAppendMarshalDoesNotAllocate|TestAppendTraceContextDoesNotAllocate|TestDecodeTraceContextDoesNotAllocate' ./internal/wire/ -v -count=1 | grep -E 'PASS|FAIL|allocates' || exit 1
	$(GO) test -run 'TestRequestFrameEncodeDoesNotAllocate|TestReplyFrameEncodeDoesNotAllocate|TestFusedMessageEncodeDoesNotAllocate|TestRingFlushPathDoesNotAllocate|TestTracedRequestFrameEncodeDoesNotAllocate' ./internal/transport/tcpnet/ -v -count=1 | grep -E 'PASS|FAIL|allocates' || exit 1
	$(GO) test -run 'TestZipfNextDoesNotAllocate|TestMixNextDoesNotAllocate' ./internal/workload/ -v -count=1 | grep -E 'PASS|FAIL|allocates' || exit 1
	$(GO) test -run 'TestShardOfDoesNotAllocate' ./internal/placement/ -v -count=1 | grep -E 'PASS|FAIL|allocates' || exit 1
	$(GO) test -run 'TestAliasPickAllocs' ./internal/coterie/ -v -count=1 | grep -E 'PASS|FAIL|allocates' || exit 1
	$(GO) test -run 'TestOptimizedPickAllocs' ./internal/core/ -v -count=1 | grep -E 'PASS|FAIL|allocates' || exit 1

# fuzz-smoke runs the wire-layer fuzzers briefly: every generated input
# must either fail to decode or round-trip byte-identically (the canonical-
# encoding property the propagation and client paths rely on), for the
# message codec, the trace-context field, and the full TCP request frame.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzUnmarshal' -fuzztime 10s ./internal/wire/
	$(GO) test -run '^$$' -fuzz 'FuzzTraceContext' -fuzztime 5s ./internal/wire/
	$(GO) test -run '^$$' -fuzz 'FuzzParseRequest' -fuzztime 5s ./internal/transport/tcpnet/

# check-obs-imports enforces the obs data-plane discipline: internal/obs
# must not import fmt, log, os, io or encoding packages — formatting and
# exposition live in internal/obs/expose.
check-obs-imports:
	@bad=$$($(GO) list -f '{{join .Imports "\n"}}' ./internal/obs | grep -Ex 'fmt|log|os|io|encoding(/.*)?' || true); \
	if [ -n "$$bad" ]; then \
		echo "internal/obs imports forbidden data-plane packages:"; echo "$$bad"; exit 1; \
	fi; \
	echo "check-obs-imports: internal/obs is clean"

ci: vet build check-obs-imports check-allocs check-admin fuzz-smoke race bench-smoke bench-loadgen bench-obs bench-batch bench-net bench-shard-smoke bench-quorum-smoke
