// Command benchquorum measures the capacity-optimized quorum strategies:
// it sweeps cmd/loadgen (sim data plane, GOMAXPROCS=4) over one scenario
// matrix — strategy × workload — and pairs the measured throughput/tails
// with the analytic availability matrix (internal/markov) and the
// discrete-event simulator's measured availability (internal/sim), then
// writes everything to BENCH_9.json.
//
// Scenarios (9 nodes, 64 items, 8 closed-loop workers — enough items
// that item-lock collisions stay rare and the matrix measures quorum
// *routing*, not lock-queue wedging):
//
//   - uniform: 50/50 read/write mix, uniform item popularity, homogeneous
//     nodes — the regime where every strategy should tie.
//   - zipf: 50/50 mix with Zipfian item popularity — hot-item contention.
//   - slow: 90/10 mix with node 4 serving every message -slow (default
//     10ms) late, declared at capacity 0.1 — the tail-injection scenario.
//     Gate: optimized >= 1.15x load-aware ops/sec at equal-or-better
//     read p99.
//   - read95: 95/5 mix with the same degraded member — the regime the
//     read-dominant mode exists for. Gate: read-dominant read p99 <= 0.8x
//     load-aware's.
//
// The availability half reuses the paper's Table 1 parameters (lambda=1,
// mu=19, p=0.95): predicted numbers come from the exact site-model
// enumeration per rule x strategy (including the weighted strategies'
// candidate-restricted availability, i.e. how much the solved
// distribution serves without falling back), measured numbers from
// internal/sim runs with strategy tracking on.
//
// Usage: go run ./scripts/benchquorum [-duration 3s] [-trials 3]
// [-slow 10ms] [-horizon 20000] [-out BENCH_9.json] [-smoke]
//
// -smoke is the CI-sized variant: only the two gated scenarios (slow,
// read95) over the strategies the gates compare, 2 trials, a short
// availability horizon, no report file — and a non-zero exit if either
// gate fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"

	"coterie/internal/coterie"
	"coterie/internal/markov"
	"coterie/internal/sim"
)

var strategies = []string{"hint", "load", "optimized", "read-dominant"}

type scenario struct {
	Name string
	Args []string // scenario-specific loadgen args
	Slow bool     // degraded member: pass -slow-node/-slow-read/-capacity
}

// runResult is one loadgen cell (best of trials).
type runResult struct {
	Scenario   string  `json:"scenario"`
	Strategy   string  `json:"strategy"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Ops        int     `json:"ops"`
	ReadP99us  int64   `json:"read_p99_us"`
	WriteP99us int64   `json:"write_p99_us"`
	Failures   int     `json:"failures"`
}

// gate is one acceptance comparison between two cells.
type gate struct {
	Name        string  `json:"name"`
	Scenario    string  `json:"scenario"`
	Ratio       float64 `json:"ratio"`
	Threshold   float64 `json:"threshold"`
	Pass        bool    `json:"pass"`
	Description string  `json:"description"`
}

// availCell pairs predicted (site-model enumeration) and measured
// (discrete-event simulation) availability for one rule x strategy.
type availCell struct {
	Rule                    string  `json:"rule"`
	Strategy                string  `json:"strategy"`
	PredictedRead           float64 `json:"predicted_read"`
	PredictedWrite          float64 `json:"predicted_write"`
	PredictedCandidateRead  float64 `json:"predicted_candidate_read"`
	PredictedCandidateWrite float64 `json:"predicted_candidate_write"`
	MeasuredRead            float64 `json:"measured_read"`
	MeasuredWrite           float64 `json:"measured_write"`
	MeasuredCandidateRead   float64 `json:"measured_candidate_read,omitempty"`
	MeasuredCandidateWrite  float64 `json:"measured_candidate_write,omitempty"`
	Fallbacks               int     `json:"fallbacks,omitempty"`
}

type report struct {
	Benchmark    string      `json:"benchmark"`
	Scenarios    []string    `json:"scenarios"`
	Strategies   []string    `json:"strategies"`
	Trials       int         `json:"trials"`
	Duration     string      `json:"duration_per_trial"`
	SlowDelay    string      `json:"slow_delay"`
	Results      []runResult `json:"results"`
	Gates        []gate      `json:"gates"`
	Availability []availCell `json:"availability"`
	Note         string      `json:"note"`
}

// loadgenOut is the subset of cmd/loadgen's JSON report benchquorum reads.
type loadgenOut struct {
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	ReadP99us int64   `json:"read_p99_us"`
	WriteP99  int64   `json:"write_p99_us"`
	Failures  int     `json:"failures"`
}

func runOnce(sc scenario, strategy string, d, slow time.Duration) (loadgenOut, error) {
	args := []string{"run", "./cmd/loadgen",
		"-nodes", "9", "-items", "64", "-workers", "8",
		"-duration", d.String(), "-seed", "1",
		"-strategy", strategy,
	}
	args = append(args, sc.Args...)
	if sc.Slow {
		args = append(args, "-slow-node", "4", "-slow-read", slow.String(), "-capacity", "4=0.1")
	}
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "GOMAXPROCS=4")
	cmd.Stderr = nil
	outBytes, err := cmd.Output()
	if err != nil {
		return loadgenOut{}, fmt.Errorf("loadgen (%s/%s): %w", sc.Name, strategy, err)
	}
	var out loadgenOut
	if err := json.Unmarshal(outBytes, &out); err != nil {
		return loadgenOut{}, fmt.Errorf("parsing loadgen output (%s/%s): %w", sc.Name, strategy, err)
	}
	return out, nil
}

// availability computes the predicted-vs-measured matrix over the
// grid/tree/majority rules at the paper's Table 1 operating point.
func availability(horizon float64) ([]availCell, error) {
	params := markov.PaperTable1Params()
	p := params.P()
	rules := []markov.NamedRule{
		{Name: "grid", Rule: coterie.Grid{}},
		{Name: "tree", Rule: coterie.Hierarchical{}},
		{Name: "majority", Rule: coterie.Majority{}},
	}
	const n = 9
	cells := make([]availCell, 0, len(rules)*len(strategies))
	for _, nr := range rules {
		for _, s := range strategies {
			pred, err := markov.StrategyAvailability(nr.Rule, n, p, s)
			if err != nil {
				return nil, err
			}
			simStrategy := ""
			if markov.StrategyWeighted(s) {
				simStrategy = s
			}
			res, err := sim.Run(sim.Config{
				N: n, Lambda: params.Lambda, Mu: params.Mu,
				Model: sim.ModelProtocol, Rule: nr.Rule,
				Strategy: simStrategy,
				Horizon:  horizon, Seed: 9,
			})
			if err != nil {
				return nil, err
			}
			cell := availCell{
				Rule: nr.Name, Strategy: s,
				PredictedRead:           pred.Read,
				PredictedWrite:          pred.Write,
				PredictedCandidateRead:  pred.CandidateRead,
				PredictedCandidateWrite: pred.CandidateWrite,
				MeasuredRead:            1 - res.ReadUnavailFrac,
				MeasuredWrite:           1 - res.WriteUnavailFrac,
			}
			if simStrategy != "" {
				cell.MeasuredCandidateRead = 1 - res.CandidateReadUnavailFrac
				cell.MeasuredCandidateWrite = 1 - res.CandidateWriteUnavailFrac
				cell.Fallbacks = res.Fallbacks
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

func main() {
	duration := flag.Duration("duration", 3*time.Second, "measurement interval per trial")
	trials := flag.Int("trials", 3, "trials per configuration (best kept)")
	slow := flag.Duration("slow", 10*time.Millisecond, "injected service delay on the degraded node")
	horizon := flag.Float64("horizon", 20000, "simulated time span for the measured-availability runs")
	out := flag.String("out", "BENCH_9.json", "output file")
	smoke := flag.Bool("smoke", false, "CI-sized run: gated scenarios only, fewer trials, short availability horizon, no report file")
	flag.Parse()

	scenarios := []scenario{
		{Name: "uniform", Args: []string{"-read-frac", "0.5"}},
		{Name: "zipf", Args: []string{"-read-frac", "0.5", "-zipf-items"}},
		{Name: "slow", Args: []string{"-read-frac", "0.9"}, Slow: true},
		{Name: "read95", Args: []string{"-read-frac", "0.95"}, Slow: true},
	}
	if *smoke {
		// Only the cells the gates compare, and only the strategies that
		// appear in them; the full matrix stays a `make bench-quorum` job.
		scenarios = scenarios[2:]
		strategies = []string{"load", "optimized", "read-dominant"}
		*trials, *horizon, *out = 2, 2000, ""
	}

	rep := report{
		Benchmark:  "quorum-strategies",
		Strategies: strategies,
		Trials:     *trials,
		Duration:   duration.String(),
		SlowDelay:  slow.String(),
		Note: "ops_per_sec is best-of-trials closed-loop throughput at GOMAXPROCS=4; p99 comes from the best trial. " +
			"Gates: slow scenario optimized >= 1.15x load ops/sec at <= load read p99; " +
			"read95 scenario read-dominant read p99 <= 0.8x load. " +
			"Availability: site-model prediction vs discrete-event measurement at lambda=1 mu=19 (p=0.95); " +
			"candidate numbers are the weighted strategies' no-fallback (distribution-only) availability.",
	}
	for _, sc := range scenarios {
		rep.Scenarios = append(rep.Scenarios, sc.Name)
	}

	best := map[[2]string]runResult{}
	for _, sc := range scenarios {
		for _, strategy := range strategies {
			cell := runResult{Scenario: sc.Name, Strategy: strategy}
			for t := 0; t < *trials; t++ {
				r, err := runOnce(sc, strategy, *duration, *slow)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchquorum:", err)
					os.Exit(1)
				}
				if r.OpsPerSec > cell.OpsPerSec {
					cell.OpsPerSec, cell.Ops = r.OpsPerSec, r.Ops
					cell.ReadP99us, cell.WriteP99us = r.ReadP99us, r.WriteP99
					cell.Failures = r.Failures
				}
			}
			best[[2]string{sc.Name, strategy}] = cell
			rep.Results = append(rep.Results, cell)
			fmt.Fprintf(os.Stderr, "%-8s %-14s best %8.0f ops/s  read p99 %7dus  write p99 %7dus\n",
				sc.Name, strategy, cell.OpsPerSec, cell.ReadP99us, cell.WriteP99us)
		}
	}

	ratio := func(a, b float64) float64 {
		if b <= 0 {
			return 0
		}
		return a / b
	}
	slowOpt, slowLoad := best[[2]string{"slow", "optimized"}], best[[2]string{"slow", "load"}]
	g := gate{
		Name: "optimized-throughput", Scenario: "slow",
		Ratio: ratio(slowOpt.OpsPerSec, slowLoad.OpsPerSec), Threshold: 1.15,
		Description: "optimized ops/sec over load-aware under tail injection, requiring read p99 no worse",
	}
	g.Pass = g.Ratio >= g.Threshold && slowOpt.ReadP99us <= slowLoad.ReadP99us
	rep.Gates = append(rep.Gates, g)

	rdDom, rdLoad := best[[2]string{"read95", "read-dominant"}], best[[2]string{"read95", "load"}]
	g = gate{
		Name: "read-dominant-tail", Scenario: "read95",
		Ratio: ratio(float64(rdDom.ReadP99us), float64(rdLoad.ReadP99us)), Threshold: 0.8,
		Description: "read-dominant read p99 over load-aware's on the 95/5 mix (lower is better)",
	}
	g.Pass = g.Ratio > 0 && g.Ratio <= g.Threshold
	rep.Gates = append(rep.Gates, g)

	allPass := true
	for _, g := range rep.Gates {
		status := "PASS"
		if !g.Pass {
			status = "WARNING: FAILED"
			allPass = false
		}
		fmt.Fprintf(os.Stderr, "benchquorum: gate %s (%s): ratio %.3f vs %.2f — %s\n",
			g.Name, g.Scenario, g.Ratio, g.Threshold, status)
	}
	if *smoke && !allPass {
		fmt.Fprintln(os.Stderr, "benchquorum: SMOKE FAIL")
		os.Exit(1)
	}

	cells, err := availability(*horizon)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchquorum:", err)
		os.Exit(1)
	}
	rep.Availability = cells
	for _, c := range cells {
		fmt.Fprintf(os.Stderr, "avail %-8s %-14s predicted r/w %.6f/%.6f  measured r/w %.6f/%.6f\n",
			c.Rule, c.Strategy, c.PredictedRead, c.PredictedWrite, c.MeasuredRead, c.MeasuredWrite)
	}

	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchquorum:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchquorum:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchquorum:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchquorum: wrote %s\n", *out)
}
