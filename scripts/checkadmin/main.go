// Command checkadmin smokes the admin plane end to end, in-process and in
// seconds: it starts a 3-daemon sharded cluster with admin endpoints on
// ephemeral ports, drives a handful of fully-sampled operations through
// the smart client, then proves every admin route answers on every daemon
// and that the aggregator can assemble a cross-node timeline for at least
// one of the traces it just created.
//
// Usage: go run ./scripts/checkadmin
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"coterie/internal/capi"
	"coterie/internal/daemon"
	"coterie/internal/nodeset"
	"coterie/internal/replica"
	"coterie/internal/transport/tcpnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "checkadmin: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("checkadmin: ok")
}

func run() error {
	const n = 3
	// Reserve ephemeral data-plane ports the same way the daemon tests do.
	book := make(map[nodeset.ID]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		book[nodeset.ID(i)] = l.Addr().String()
		l.Close()
	}

	daemons := make([]*daemon.Daemon, 0, n)
	admins := make([]string, 0, n)
	defer func() {
		for _, d := range daemons {
			d.Close()
		}
	}()
	for i := 0; i < n; i++ {
		d, err := daemon.Start(daemon.Config{
			Self:        nodeset.ID(i),
			Addrs:       book,
			ItemSize:    64,
			CallTimeout: 2 * time.Second,
			Pipeline:    true,
			Shards:      4,
			RF:          3,
			Obs:         true,
			AdminAddr:   "127.0.0.1:0",
		})
		if err != nil {
			return fmt.Errorf("daemon %d: %w", i, err)
		}
		daemons = append(daemons, d)
		if d.AdminAddr() == "" {
			return fmt.Errorf("daemon %d: admin plane did not bind", i)
		}
		admins = append(admins, d.AdminAddr())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	cli := tcpnet.New(book)
	defer cli.Close()
	client, err := capi.NewClient(cli, capi.ClientConfig{
		Self:        nodeset.ID(100),
		Seeds:       []nodeset.ID{0, 1, 2},
		TraceSample: 1,
	})
	if err != nil {
		return err
	}
	if err := client.Refresh(ctx); err != nil {
		return err
	}
	for i := 0; i < 6; i++ {
		item := fmt.Sprintf("smoke-%d", i%2)
		if _, err := client.Write(ctx, item, replica.Update{Offset: 0, Data: []byte{byte(i)}}); err != nil {
			return fmt.Errorf("write %s: %w", item, err)
		}
		if _, err := client.Read(ctx, item); err != nil {
			return fmt.Errorf("read %s: %w", item, err)
		}
	}

	// Every admin route on every daemon.
	routes := []struct {
		path string
		want func(string) error
	}{
		{"/healthz", contains(`"status": "ok"`)},
		{"/metrics", contains("# TYPE")},
		{"/metrics?format=json", contains(`"counters"`)},
		{"/traces", nil},
		{"/debug/pprof/cmdline", nil},
	}
	for i, addr := range admins {
		for _, rt := range routes {
			body, err := get("http://" + addr + rt.path)
			if err != nil {
				return fmt.Errorf("daemon %d %s: %w", i, rt.path, err)
			}
			if rt.want != nil {
				if err := rt.want(body); err != nil {
					return fmt.Errorf("daemon %d %s: %w", i, rt.path, err)
				}
			}
		}
		fmt.Printf("daemon %d admin %s: all routes ok\n", i, addr)
	}

	// The aggregator sees the cluster and can assemble a timeline.
	cs := capi.ScrapeCluster(ctx, nil, admins)
	if len(cs.Errs) != 0 {
		return fmt.Errorf("scrape errors: %v", cs.Errs)
	}
	ids := cs.TraceIDs()
	if len(ids) == 0 {
		return fmt.Errorf("no traces scraped despite TraceSample=1")
	}
	var best int
	for _, id := range ids {
		spans, err := cs.Timeline(id)
		if err != nil {
			return err
		}
		nodes := map[int]bool{}
		for _, s := range spans {
			nodes[s.Node] = true
		}
		if len(nodes) > best {
			best = len(nodes)
		}
	}
	if best < 2 {
		return fmt.Errorf("no trace spans more than one node (best %d)", best)
	}
	fmt.Printf("aggregator: %d traces, widest timeline spans %d nodes\n", len(ids), best)
	return nil
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, sb.String())
	}
	return sb.String(), nil
}

func contains(substr string) func(string) error {
	return func(body string) error {
		if !strings.Contains(body, substr) {
			return fmt.Errorf("body missing %q", substr)
		}
		return nil
	}
}
