// Command benchbatch measures the group-commit write pipeline: it runs
// cmd/loadgen with batching off and on, at GOMAXPROCS=1 and 4, over two
// workloads, and writes the comparison to BENCH_4.json.
//
//   - contended: 9 nodes, ONE item, 16 write-only workers with coordinator
//     affinity — every write fights for the same replicas' transactional
//     locks, the regime group commit exists for. The gate is >= 1.5x
//     ops/sec with batching on at GOMAXPROCS=4.
//   - disjoint: 8 items, one worker each, mixed reads/writes — no lock
//     contention, so batching can only add combiner overhead. The gate is
//     <= 5% regression with batching *off* against the pre-change baseline;
//     here we report off-vs-on on the same binary, which bounds the
//     combiner's idle cost.
//
// Each configuration runs several trials and keeps the best ops/sec
// (closed-loop throughput is noisy downward — GC pauses, scheduler jitter —
// so best-of is the low-variance estimator of the machine's capability).
//
// Usage: go run ./scripts/benchbatch [-duration 2s] [-trials 3] [-out BENCH_4.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"
)

type runResult struct {
	Workload   string  `json:"workload"` // contended | disjoint
	GOMAXPROCS int     `json:"gomaxprocs"`
	Batch      bool    `json:"batch"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Ops        int     `json:"ops"`
	WriteP99us int64   `json:"write_p99_us"`
	Failures   int     `json:"failures"`
}

type speedup struct {
	Workload   string  `json:"workload"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	OffOps     float64 `json:"batch_off_ops_per_sec"`
	OnOps      float64 `json:"batch_on_ops_per_sec"`
	Ratio      float64 `json:"on_over_off"` // >1 = batching faster
}

type report struct {
	Benchmark string      `json:"benchmark"`
	Workloads []string    `json:"workloads"`
	Trials    int         `json:"trials"`
	Duration  string      `json:"duration_per_trial"`
	Results   []runResult `json:"results"`
	Speedups  []speedup   `json:"speedups"`
	Note      string      `json:"note"`
}

// loadgenOut is the subset of cmd/loadgen's JSON report benchbatch reads.
type loadgenOut struct {
	Ops        int     `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	WriteP99us int64   `json:"write_p99_us"`
	Failures   int     `json:"failures"`
}

func workloadArgs(workload string, d time.Duration, batch bool) []string {
	args := []string{"run", "./cmd/loadgen", "-duration", d.String(), fmt.Sprintf("-batch=%v", batch)}
	switch workload {
	case "contended":
		args = append(args, "-nodes", "9", "-items", "1", "-workers", "16", "-read-frac", "0", "-affinity")
	case "disjoint":
		args = append(args, "-nodes", "9", "-items", "8", "-workers", "8", "-disjoint", "-read-frac", "0.5")
	}
	return args
}

func runOnce(workload string, procs int, batch bool, d time.Duration) (loadgenOut, error) {
	cmd := exec.Command("go", workloadArgs(workload, d, batch)...)
	cmd.Env = append(os.Environ(), fmt.Sprintf("GOMAXPROCS=%d", procs))
	cmd.Stderr = nil
	outBytes, err := cmd.Output()
	if err != nil {
		return loadgenOut{}, fmt.Errorf("loadgen (%s GOMAXPROCS=%d batch=%v): %w", workload, procs, batch, err)
	}
	var out loadgenOut
	if err := json.Unmarshal(outBytes, &out); err != nil {
		return loadgenOut{}, fmt.Errorf("parsing loadgen output: %w", err)
	}
	return out, nil
}

func main() {
	duration := flag.Duration("duration", 2*time.Second, "measurement interval per trial")
	trials := flag.Int("trials", 3, "trials per configuration (best kept)")
	out := flag.String("out", "BENCH_4.json", "output file")
	flag.Parse()

	rep := report{
		Benchmark: "group-commit",
		Workloads: []string{
			"contended: loadgen -nodes 9 -items 1 -workers 16 -read-frac 0 -affinity",
			"disjoint:  loadgen -nodes 9 -items 8 -workers 8 -disjoint -read-frac 0.5",
		},
		Trials:   *trials,
		Duration: duration.String(),
		Note: "ops_per_sec is best-of-trials closed-loop throughput; on_over_off > 1 means group commit is faster. " +
			"Gates: contended GOMAXPROCS=4 >= 1.5x; disjoint batch-off within 5% of the pre-change baseline.",
	}

	for _, workload := range []string{"contended", "disjoint"} {
		for _, procs := range []int{1, 4} {
			var offOn [2]float64
			for i, batch := range []bool{false, true} {
				best := runResult{Workload: workload, GOMAXPROCS: procs, Batch: batch}
				for t := 0; t < *trials; t++ {
					r, err := runOnce(workload, procs, batch, *duration)
					if err != nil {
						fmt.Fprintln(os.Stderr, "benchbatch:", err)
						os.Exit(1)
					}
					if r.OpsPerSec > best.OpsPerSec {
						best.OpsPerSec, best.Ops = r.OpsPerSec, r.Ops
						best.WriteP99us, best.Failures = r.WriteP99us, r.Failures
					}
				}
				offOn[i] = best.OpsPerSec
				rep.Results = append(rep.Results, best)
				fmt.Fprintf(os.Stderr, "%-9s GOMAXPROCS=%d batch=%-5v best %8.0f ops/s  write p99 %6dus\n",
					workload, procs, batch, best.OpsPerSec, best.WriteP99us)
			}
			ratio := 0.0
			if offOn[0] > 0 {
				ratio = offOn[1] / offOn[0]
			}
			rep.Speedups = append(rep.Speedups, speedup{
				Workload: workload, GOMAXPROCS: procs,
				OffOps: offOn[0], OnOps: offOn[1], Ratio: ratio,
			})
			fmt.Fprintf(os.Stderr, "%-9s GOMAXPROCS=%d batch on/off = %.2fx\n", workload, procs, ratio)
			if workload == "contended" && procs == 4 && ratio < 1.5 {
				fmt.Fprintf(os.Stderr, "benchbatch: WARNING: contended speedup %.2fx below the 1.5x gate\n", ratio)
			}
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchbatch:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchbatch:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchbatch:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchbatch: wrote %s\n", *out)
}
