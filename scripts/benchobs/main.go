// Command benchobs measures the observability overhead: it runs
// cmd/loadgen with the full obs registry and flight recorder attached and
// again with observability disabled (obs.Nop), at GOMAXPROCS=1 and 4, and
// writes the comparison to BENCH_3.json. The disjoint workload pins each
// worker to its own item so the measurement isolates the per-operation
// instrumentation cost from protocol-level lock conflicts.
//
// Each configuration runs several trials and keeps the best ops/sec
// (closed-loop throughput is noisy downward — GC pauses, scheduler jitter —
// so best-of is the low-variance estimator of the machine's capability).
//
// Usage: go run ./scripts/benchobs [-duration 2s] [-trials 3] [-out BENCH_3.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"
)

type runResult struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Obs        bool    `json:"obs"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Ops        int     `json:"ops"`
}

type overhead struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	NopOps     float64 `json:"nop_ops_per_sec"`
	ObsOps     float64 `json:"obs_ops_per_sec"`
	Pct        float64 `json:"overhead_pct"` // positive = obs slower
}

type report struct {
	Benchmark string      `json:"benchmark"`
	Workload  string      `json:"workload"`
	Trials    int         `json:"trials"`
	Duration  string      `json:"duration_per_trial"`
	Results   []runResult `json:"results"`
	Overhead  []overhead  `json:"overhead"`
	Note      string      `json:"note"`
}

func main() {
	duration := flag.Duration("duration", 2*time.Second, "measurement interval per trial")
	trials := flag.Int("trials", 3, "trials per configuration (best kept)")
	out := flag.String("out", "BENCH_3.json", "output file")
	flag.Parse()

	rep := report{
		Benchmark: "obs-overhead",
		Workload:  "loadgen -nodes 9 -items 8 -workers 4 -disjoint -read-frac 0.5",
		Trials:    *trials,
		Duration:  duration.String(),
		Note:      "ops_per_sec is best-of-trials closed-loop throughput; overhead_pct = (nop-obs)/nop*100, positive when instrumentation costs throughput",
	}

	for _, procs := range []int{1, 4} {
		var perObs [2]float64 // [0]=nop, [1]=obs
		for i, obsOn := range []bool{false, true} {
			best := runResult{GOMAXPROCS: procs, Obs: obsOn}
			for t := 0; t < *trials; t++ {
				r, err := runOnce(procs, obsOn, *duration)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchobs:", err)
					os.Exit(1)
				}
				if r.OpsPerSec > best.OpsPerSec {
					best.OpsPerSec, best.Ops = r.OpsPerSec, r.Ops
				}
			}
			perObs[i] = best.OpsPerSec
			rep.Results = append(rep.Results, best)
			fmt.Fprintf(os.Stderr, "GOMAXPROCS=%d obs=%-5v best %.0f ops/s\n", procs, obsOn, best.OpsPerSec)
		}
		pct := 0.0
		if perObs[0] > 0 {
			pct = (perObs[0] - perObs[1]) / perObs[0] * 100
		}
		rep.Overhead = append(rep.Overhead, overhead{
			GOMAXPROCS: procs, NopOps: perObs[0], ObsOps: perObs[1], Pct: pct,
		})
		fmt.Fprintf(os.Stderr, "GOMAXPROCS=%d overhead %.2f%%\n", procs, pct)
		if pct > 5 {
			fmt.Fprintf(os.Stderr, "benchobs: WARNING: overhead %.2f%% exceeds the 5%% budget at GOMAXPROCS=%d\n", pct, procs)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchobs:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchobs:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchobs:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchobs: wrote %s\n", *out)
}

func runOnce(procs int, obsOn bool, d time.Duration) (runResult, error) {
	cmd := exec.Command("go", "run", "./cmd/loadgen",
		"-nodes", "9", "-items", "8", "-workers", "4", "-disjoint",
		"-duration", d.String(),
		fmt.Sprintf("-obs=%v", obsOn))
	cmd.Env = append(os.Environ(), fmt.Sprintf("GOMAXPROCS=%d", procs))
	cmd.Stderr = nil // discard the obs summary; stdout is the JSON report
	outBytes, err := cmd.Output()
	if err != nil {
		return runResult{}, fmt.Errorf("loadgen (GOMAXPROCS=%d obs=%v): %w", procs, obsOn, err)
	}
	var r struct {
		OpsPerSec float64 `json:"ops_per_sec"`
		Ops       int     `json:"ops"`
	}
	if err := json.Unmarshal(outBytes, &r); err != nil {
		return runResult{}, fmt.Errorf("parsing loadgen output: %w", err)
	}
	return runResult{GOMAXPROCS: procs, Obs: obsOn, OpsPerSec: r.OpsPerSec, Ops: r.Ops}, nil
}
