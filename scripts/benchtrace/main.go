// Command benchtrace measures the cost of the observability plane on the
// networked data path and writes BENCH_8.json. Two sections:
//
//   - overhead: the sharded TCP loadgen runs dark (no admin endpoints, no
//     trace sampling) and again with the full plane on — per-daemon admin
//     servers, /healthz readiness, 1-in-16 distributed-trace sampling, and
//     the post-run cluster scrape. The gate is 2%: a plane you cannot
//     afford to leave on is a plane nobody turns on.
//
//   - attribution: a hedged-reads run against a deliberately slow daemon
//     with tracing on must produce non-zero hedge counters (fired and
//     won-or-canceled) — the tail-attribution half of the plane observes
//     the hedges it exists to explain.
//
// Throughput is best-of-trials per configuration (closed-loop throughput
// is noisy downward; best-of is the low-variance estimator).
//
// Usage: go run ./scripts/benchtrace [-duration 3s] [-trials 3] [-out BENCH_8.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"
)

type loadgenOut struct {
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	ReadP99us int64   `json:"read_p99_us"`
	Client    *struct {
		Hedges        uint64 `json:"hedges"`
		HedgeWins     uint64 `json:"hedge_wins"`
		HedgeCanceled uint64 `json:"hedge_canceled"`
		TracesSampled uint64 `json:"traces_sampled"`
	} `json:"client"`
	ClusterMetrics map[string]int64 `json:"cluster_metrics"`
}

type runResult struct {
	Plane     bool    `json:"plane"` // admin endpoints + tracing on
	OpsPerSec float64 `json:"ops_per_sec"`
	Ops       int     `json:"ops"`
	Traces    uint64  `json:"traces_sampled,omitempty"`
}

type report struct {
	Benchmark   string           `json:"benchmark"`
	Workload    string           `json:"workload"`
	Trials      int              `json:"trials"`
	Duration    string           `json:"duration_per_trial"`
	Results     []runResult      `json:"results"`
	OverheadPct float64          `json:"overhead_pct"` // positive = plane slower
	Gate        string           `json:"gate"`
	GatePassed  bool             `json:"gate_passed"`
	Hedge       *hedgeResult     `json:"hedge_attribution"`
	Cluster     map[string]int64 `json:"cluster_metrics_sample,omitempty"`
	Note        string           `json:"note"`
}

type hedgeResult struct {
	Hedges        uint64 `json:"hedges"`
	HedgeWins     uint64 `json:"hedge_wins"`
	HedgeCanceled uint64 `json:"hedge_canceled"`
	TracesSampled uint64 `json:"traces_sampled"`
	ReadP99us     int64  `json:"read_p99_us"`
	Attributed    bool   `json:"attributed"` // fired > 0 and every hedge resolved
}

func main() {
	duration := flag.Duration("duration", 3*time.Second, "measurement interval per trial")
	trials := flag.Int("trials", 3, "trials per configuration (best kept)")
	out := flag.String("out", "BENCH_8.json", "output file")
	flag.Parse()

	rep := report{
		Benchmark: "BENCH_8 observability plane overhead + hedge attribution",
		Workload:  "loadgen -net tcp -batch -shards 8 -nodes 4 -rf 3 -workers 8 -keyspace 2000 -read-frac 0.5",
		Trials:    *trials,
		Duration:  duration.String(),
		Gate:      "plane overhead <= 2% of dark throughput",
		Note: "plane=true runs per-daemon admin endpoints, /healthz readiness, -trace-sample 16 " +
			"and a post-run cluster scrape; plane=false runs dark. overhead_pct = (dark-plane)/dark*100.",
	}

	var dark, lit float64
	for _, plane := range []bool{false, true} {
		best := runResult{Plane: plane}
		for t := 0; t < *trials; t++ {
			r, err := runOnce(plane, false, *duration)
			if err != nil {
				fatal(err)
			}
			if r.OpsPerSec > best.OpsPerSec {
				best.OpsPerSec, best.Ops = r.OpsPerSec, r.Ops
				if r.Client != nil {
					best.Traces = r.Client.TracesSampled
				}
			}
		}
		rep.Results = append(rep.Results, best)
		if plane {
			lit = best.OpsPerSec
		} else {
			dark = best.OpsPerSec
		}
		fmt.Fprintf(os.Stderr, "plane=%-5v best %.0f ops/s\n", plane, best.OpsPerSec)
	}
	if dark > 0 {
		rep.OverheadPct = (dark - lit) / dark * 100
	}
	rep.GatePassed = rep.OverheadPct <= 2.0
	fmt.Fprintf(os.Stderr, "plane overhead %.2f%% (gate <= 2%%: %v)\n", rep.OverheadPct, rep.GatePassed)
	if !rep.GatePassed {
		fmt.Fprintf(os.Stderr, "benchtrace: WARNING: overhead exceeds the 2%% budget\n")
	}

	// Attribution section: hedged reads against a slow daemon, plane on.
	hr, err := runOnce(true, true, *duration)
	if err != nil {
		fatal(err)
	}
	h := &hedgeResult{ReadP99us: hr.ReadP99us}
	if hr.Client != nil {
		h.Hedges = hr.Client.Hedges
		h.HedgeWins = hr.Client.HedgeWins
		h.HedgeCanceled = hr.Client.HedgeCanceled
		h.TracesSampled = hr.Client.TracesSampled
	}
	h.Attributed = h.Hedges > 0 && h.HedgeWins+h.HedgeCanceled > 0
	rep.Hedge = h
	rep.Cluster = hr.ClusterMetrics
	fmt.Fprintf(os.Stderr, "hedge attribution: fired=%d won=%d canceled=%d traces=%d attributed=%v\n",
		h.Hedges, h.HedgeWins, h.HedgeCanceled, h.TracesSampled, h.Attributed)
	if !h.Attributed {
		fmt.Fprintf(os.Stderr, "benchtrace: WARNING: hedge counters are zero — attribution did not engage\n")
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchtrace: wrote %s\n", *out)
}

func runOnce(plane, hedge bool, d time.Duration) (loadgenOut, error) {
	args := []string{"run", "./cmd/loadgen",
		"-net", "tcp", "-batch", "-shards", "8", "-nodes", "4", "-rf", "3",
		"-workers", "8", "-keyspace", "2000", "-read-frac", "0.5",
		"-item-size", "32",
		"-duration", d.String(),
		fmt.Sprintf("-admin=%v", plane),
	}
	if plane {
		args = append(args, "-trace-sample", "16")
	} else {
		args = append(args, "-trace-sample", "0")
	}
	if hedge {
		args = append(args, "-hedge", "-read-frac", "0.95",
			"-slow-node", "0", "-slow-read", "10ms")
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = nil // stdout carries the JSON report
	outBytes, err := cmd.Output()
	if err != nil {
		return loadgenOut{}, fmt.Errorf("loadgen (plane=%v hedge=%v): %w", plane, hedge, err)
	}
	var r loadgenOut
	if err := json.Unmarshal(outBytes, &r); err != nil {
		return loadgenOut{}, fmt.Errorf("parsing loadgen output: %w", err)
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtrace:", err)
	os.Exit(1)
}
