// Command benchnet measures the networked data plane: it runs cmd/loadgen
// over three transports — the in-process simulator, TCP loopback with
// pipelined connections, and TCP loopback dialing one connection per call —
// at GOMAXPROCS=1 and 4, and writes the comparison to BENCH_5.json.
//
//   - sim: the in-process transport.Network; no syscalls, no codec. This is
//     the ceiling — the cost of the protocol itself.
//   - tcp-pipelined: tcpnet with persistent multiplexed connections and
//     write coalescing; the default production configuration. The gap to
//     sim is the price of the wire (frame codec + kernel loopback).
//   - tcp-percall: tcpnet with -pipeline=false — dial, one request, one
//     reply, close, for every RPC. The naive-RPC baseline the multiplexer
//     exists to beat. The gate is pipelined >= 3x per-call ops/sec at
//     GOMAXPROCS=4.
//
// TCP runs spawn one coteried process per node over loopback; the same
// -pipeline setting applies to the daemons' inter-replica calls, so the
// whole data plane (client API + protocol rounds) rides the configuration
// being measured.
//
// Each configuration runs several trials and keeps the best ops/sec
// (closed-loop throughput is noisy downward — GC pauses, scheduler jitter,
// process spawn cost — so best-of is the low-variance estimator).
//
// Usage: go run ./scripts/benchnet [-duration 2s] [-trials 3] [-out BENCH_5.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"
)

type runResult struct {
	Transport  string  `json:"transport"` // sim | tcp-pipelined | tcp-percall
	GOMAXPROCS int     `json:"gomaxprocs"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Ops        int     `json:"ops"`
	ReadP50us  int64   `json:"read_p50_us"`
	WriteP50us int64   `json:"write_p50_us"`
	Failures   int     `json:"failures"`
	Violations int     `json:"onecopy_violations"`
}

type speedup struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	PerCallOps float64 `json:"tcp_percall_ops_per_sec"`
	PipedOps   float64 `json:"tcp_pipelined_ops_per_sec"`
	SimOps     float64 `json:"sim_ops_per_sec"`
	Ratio      float64 `json:"pipelined_over_percall"` // the 3x gate
	WireCost   float64 `json:"sim_over_pipelined"`     // wire overhead factor
}

type report struct {
	Benchmark string      `json:"benchmark"`
	Workload  string      `json:"workload"`
	Trials    int         `json:"trials"`
	Duration  string      `json:"duration_per_trial"`
	Results   []runResult `json:"results"`
	Speedups  []speedup   `json:"speedups"`
	Note      string      `json:"note"`
}

// loadgenOut is the subset of cmd/loadgen's JSON report benchnet reads.
type loadgenOut struct {
	Ops        int     `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	ReadP50us  int64   `json:"read_p50_us"`
	WriteP50us int64   `json:"write_p50_us"`
	Failures   int     `json:"failures"`
	Violations *int    `json:"onecopy_violations"`
}

const workload = "-nodes 3 -items 8 -workers 8 -disjoint -read-frac 0.5"

func transportArgs(transport string, d time.Duration) []string {
	args := []string{"run", "./cmd/loadgen", "-duration", d.String(),
		"-nodes", "3", "-items", "8", "-workers", "8", "-disjoint", "-read-frac", "0.5"}
	switch transport {
	case "sim":
	case "tcp-pipelined":
		args = append(args, "-net", "tcp", "-pipeline=true")
	case "tcp-percall":
		args = append(args, "-net", "tcp", "-pipeline=false")
	}
	return args
}

func runOnce(transport string, procs int, d time.Duration) (loadgenOut, error) {
	cmd := exec.Command("go", transportArgs(transport, d)...)
	cmd.Env = append(os.Environ(), fmt.Sprintf("GOMAXPROCS=%d", procs))
	cmd.Stderr = nil
	outBytes, err := cmd.Output()
	if err != nil {
		return loadgenOut{}, fmt.Errorf("loadgen (%s GOMAXPROCS=%d): %w", transport, procs, err)
	}
	var out loadgenOut
	if err := json.Unmarshal(outBytes, &out); err != nil {
		return loadgenOut{}, fmt.Errorf("parsing loadgen output: %w", err)
	}
	return out, nil
}

func main() {
	duration := flag.Duration("duration", 2*time.Second, "measurement interval per trial")
	trials := flag.Int("trials", 3, "trials per configuration (best kept)")
	out := flag.String("out", "BENCH_5.json", "output file")
	flag.Parse()

	rep := report{
		Benchmark: "networked-data-plane",
		Workload:  "loadgen " + workload,
		Trials:    *trials,
		Duration:  duration.String(),
		Note: "ops_per_sec is best-of-trials closed-loop throughput; pipelined_over_percall > 1 means " +
			"multiplexed persistent connections beat dial-per-call. Gate: >= 3x at GOMAXPROCS=4. " +
			"sim_over_pipelined is the residual cost of the wire (codec + loopback syscalls). " +
			"TCP runs verify one-copy serializability; onecopy_violations must be 0.",
	}

	transports := []string{"sim", "tcp-pipelined", "tcp-percall"}
	for _, procs := range []int{1, 4} {
		best := make(map[string]runResult, len(transports))
		for _, transport := range transports {
			b := runResult{Transport: transport, GOMAXPROCS: procs}
			for t := 0; t < *trials; t++ {
				r, err := runOnce(transport, procs, *duration)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchnet:", err)
					os.Exit(1)
				}
				if r.Violations != nil && *r.Violations > 0 {
					fmt.Fprintf(os.Stderr, "benchnet: %s reported %d one-copy violations\n", transport, *r.Violations)
					os.Exit(1)
				}
				if r.OpsPerSec > b.OpsPerSec {
					b.OpsPerSec, b.Ops, b.Failures = r.OpsPerSec, r.Ops, r.Failures
					b.ReadP50us, b.WriteP50us = r.ReadP50us, r.WriteP50us
				}
			}
			best[transport] = b
			rep.Results = append(rep.Results, b)
			fmt.Fprintf(os.Stderr, "%-14s GOMAXPROCS=%d best %8.0f ops/s  read p50 %6dus  write p50 %6dus\n",
				transport, procs, b.OpsPerSec, b.ReadP50us, b.WriteP50us)
		}
		sp := speedup{
			GOMAXPROCS: procs,
			PerCallOps: best["tcp-percall"].OpsPerSec,
			PipedOps:   best["tcp-pipelined"].OpsPerSec,
			SimOps:     best["sim"].OpsPerSec,
		}
		if sp.PerCallOps > 0 {
			sp.Ratio = sp.PipedOps / sp.PerCallOps
		}
		if sp.PipedOps > 0 {
			sp.WireCost = sp.SimOps / sp.PipedOps
		}
		rep.Speedups = append(rep.Speedups, sp)
		fmt.Fprintf(os.Stderr, "GOMAXPROCS=%d pipelined/per-call = %.2fx, sim/pipelined = %.2fx\n",
			procs, sp.Ratio, sp.WireCost)
		if procs == 4 && sp.Ratio < 3 {
			fmt.Fprintf(os.Stderr, "benchnet: WARNING: pipelined speedup %.2fx below the 3x gate\n", sp.Ratio)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchnet:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchnet:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchnet:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchnet: wrote %s\n", *out)
}
