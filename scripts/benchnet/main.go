// Command benchnet measures the networked data plane after the
// syscall-lean hot-path work (frame-ring writer with vectored flushes,
// sharded call tables, fused protocol rounds, bystander write-through)
// and writes BENCH_6.json. Three sections:
//
//   - gate: tcp-pipelined at GOMAXPROCS=1 on the canonical workload,
//     compared against the same configuration's BENCH_5 result (read from
//     BENCH_5.json when present). The acceptance gate is >= 3x.
//   - scaling: cores in {1, 2, 4}. Each point offers proportional load
//     (workers = 8*cores, each on its own item) and runs at
//     GOMAXPROCS = min(cores, NumCPU) — weak scaling on a multi-core
//     machine, pipelining-depth scaling where the hardware has fewer CPUs
//     than requested (oversubscribing threads past physical cores would
//     measure scheduler thrash, not the transport). ops_per_sec must be
//     monotone non-decreasing from 1 to 4.
//   - churn: tcp-pipelined under process-level crash/recovery (-churn),
//     whose end-of-run one-copy serializability check must report zero
//     violations.
//
// A sim run of the canonical workload rides along so the report carries
// the sim-vs-TCP gap (ops/sec and p50/p99 per transport) — the number
// this line of work drives toward 1. The dial-per-call baseline is not
// re-measured; BENCH_5.json keeps that comparison.
//
// Each configuration runs several trials and keeps the best ops/sec
// (closed-loop throughput is noisy downward — GC pauses, scheduler
// jitter, process spawn cost — so best-of is the low-variance estimator).
//
// Usage: go run ./scripts/benchnet [-duration 3s] [-trials 3] [-out BENCH_6.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"time"
)

// bench5PipelinedG1 is the BENCH_5 tcp-pipelined GOMAXPROCS=1 throughput
// the gate compares against, used when BENCH_5.json is not on disk.
const bench5PipelinedG1 = 4058.5202269985543

type runResult struct {
	Transport  string  `json:"transport"` // sim | tcp-pipelined
	Cores      int     `json:"cores"`     // requested; procs is what ran
	GOMAXPROCS int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	Items      int     `json:"items"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Ops        int     `json:"ops"`
	ReadP50us  int64   `json:"read_p50_us"`
	ReadP99us  int64   `json:"read_p99_us"`
	WriteP50us int64   `json:"write_p50_us"`
	WriteP99us int64   `json:"write_p99_us"`
	Failures   int     `json:"failures"`
	Violations int     `json:"onecopy_violations"`
	ChurnMs    int64   `json:"churn_ms,omitempty"`
}

type gate struct {
	Bench5OpsPerSec float64 `json:"bench5_tcp_pipelined_ops_per_sec"`
	OpsPerSec       float64 `json:"tcp_pipelined_ops_per_sec"`
	Speedup         float64 `json:"speedup_over_bench5"` // the 3x gate
	SimOpsPerSec    float64 `json:"sim_ops_per_sec"`
	SimOverPiped    float64 `json:"sim_over_pipelined"` // residual wire cost
	Pass            bool    `json:"pass"`
}

type report struct {
	Benchmark string      `json:"benchmark"`
	Workload  string      `json:"workload"`
	Trials    int         `json:"trials"`
	Duration  string      `json:"duration_per_trial"`
	NumCPU    int         `json:"num_cpu"`
	Gate      gate        `json:"gate"`
	Scaling   []runResult `json:"scaling"`
	Monotone  bool        `json:"scaling_monotone"`
	Churn     runResult   `json:"churn"`
	Results   []runResult `json:"results"` // gate-workload runs per transport
	Note      string      `json:"note"`
}

// loadgenOut is the subset of cmd/loadgen's JSON report benchnet reads.
type loadgenOut struct {
	Ops        int     `json:"ops"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	ReadP50us  int64   `json:"read_p50_us"`
	ReadP99us  int64   `json:"read_p99_us"`
	WriteP50us int64   `json:"write_p50_us"`
	WriteP99us int64   `json:"write_p99_us"`
	Failures   int     `json:"failures"`
	Violations *int    `json:"onecopy_violations"`
}

type spec struct {
	transport string
	cores     int // requested cores; 0 = leave GOMAXPROCS at 1
	workers   int
	items     int
	churn     time.Duration
}

func (s spec) procs() int {
	p := s.cores
	if p <= 0 {
		p = 1
	}
	if n := runtime.NumCPU(); p > n {
		p = n
	}
	return p
}

func (s spec) args(d time.Duration) []string {
	args := []string{"run", "./cmd/loadgen", "-duration", d.String(),
		"-nodes", "3", "-items", strconv.Itoa(s.items), "-workers", strconv.Itoa(s.workers),
		"-disjoint", "-read-frac", "0.5"}
	if s.transport != "sim" {
		args = append(args, "-net", "tcp", "-pipeline=true")
	}
	if s.churn > 0 {
		args = append(args, "-churn", s.churn.String())
	}
	return args
}

func runOnce(s spec, d time.Duration) (loadgenOut, error) {
	cmd := exec.Command("go", s.args(d)...)
	cmd.Env = append(os.Environ(), fmt.Sprintf("GOMAXPROCS=%d", s.procs()))
	cmd.Stderr = nil
	outBytes, err := cmd.Output()
	if err != nil {
		return loadgenOut{}, fmt.Errorf("loadgen (%s cores=%d): %w", s.transport, s.cores, err)
	}
	var out loadgenOut
	if err := json.Unmarshal(outBytes, &out); err != nil {
		return loadgenOut{}, fmt.Errorf("parsing loadgen output: %w", err)
	}
	return out, nil
}

// best runs spec trials times and keeps the highest-throughput result;
// any one-copy violation in any trial is fatal.
func best(s spec, trials int, d time.Duration) runResult {
	b := runResult{Transport: s.transport, Cores: s.cores, GOMAXPROCS: s.procs(),
		Workers: s.workers, Items: s.items, ChurnMs: s.churn.Milliseconds()}
	for t := 0; t < trials; t++ {
		r, err := runOnce(s, d)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchnet:", err)
			os.Exit(1)
		}
		if r.Violations != nil && *r.Violations > 0 {
			fmt.Fprintf(os.Stderr, "benchnet: %s reported %d one-copy violations\n", s.transport, *r.Violations)
			os.Exit(1)
		}
		if r.OpsPerSec > b.OpsPerSec {
			b.OpsPerSec, b.Ops, b.Failures = r.OpsPerSec, r.Ops, r.Failures
			b.ReadP50us, b.ReadP99us = r.ReadP50us, r.ReadP99us
			b.WriteP50us, b.WriteP99us = r.WriteP50us, r.WriteP99us
			// Record the parallelism the child actually ran with, not the
			// value we asked for: loadgen reports runtime.GOMAXPROCS(0), so
			// an env override or a core-capped machine shows up honestly in
			// the scaling section instead of as a silently mislabeled point.
			if r.GOMAXPROCS > 0 {
				b.GOMAXPROCS = r.GOMAXPROCS
			}
		}
	}
	fmt.Fprintf(os.Stderr, "%-14s cores=%d procs=%d workers=%d best %8.0f ops/s  read p50/p99 %d/%dus  write p50/p99 %d/%dus\n",
		s.transport, s.cores, b.GOMAXPROCS, s.workers, b.OpsPerSec, b.ReadP50us, b.ReadP99us, b.WriteP50us, b.WriteP99us)
	return b
}

// bench5Baseline reads the tcp-pipelined GOMAXPROCS=1 throughput out of a
// BENCH_5.json report, falling back to the recorded constant.
func bench5Baseline(path string) float64 {
	raw, err := os.ReadFile(path)
	if err != nil {
		return bench5PipelinedG1
	}
	var rep struct {
		Speedups []struct {
			GOMAXPROCS int     `json:"gomaxprocs"`
			PipedOps   float64 `json:"tcp_pipelined_ops_per_sec"`
		} `json:"speedups"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return bench5PipelinedG1
	}
	for _, sp := range rep.Speedups {
		if sp.GOMAXPROCS == 1 && sp.PipedOps > 0 {
			return sp.PipedOps
		}
	}
	return bench5PipelinedG1
}

func main() {
	duration := flag.Duration("duration", 3*time.Second, "measurement interval per trial")
	trials := flag.Int("trials", 3, "trials per configuration (best kept)")
	out := flag.String("out", "BENCH_6.json", "output file")
	baselinePath := flag.String("baseline", "BENCH_5.json", "BENCH_5 report to read the gate baseline from")
	churn := flag.Duration("churn", 500*time.Millisecond, "churn cadence for the crash/recovery run")
	flag.Parse()

	rep := report{
		Benchmark: "networked-hot-path",
		Workload:  "loadgen -nodes 3 -disjoint -read-frac 0.5 (workers/items per section)",
		Trials:    *trials,
		Duration:  duration.String(),
		NumCPU:    runtime.NumCPU(),
		Note: "ops_per_sec is best-of-trials closed-loop throughput. gate.speedup_over_bench5 must be >= 3 " +
			"(tcp-pipelined, GOMAXPROCS=1, same workload as BENCH_5). scaling points offer 8 workers per " +
			"requested core on disjoint items at GOMAXPROCS=min(cores,NumCPU) and must be monotone " +
			"non-decreasing 1->4. churn kills/respawns daemons every churn_ms and must verify one-copy " +
			"serializability (onecopy_violations = 0). sim rides along for the sim-vs-TCP gap (p50/p99 per transport).",
	}

	// Gate: canonical BENCH_5 workload, tcp-pipelined and sim.
	piped := best(spec{transport: "tcp-pipelined", cores: 1, workers: 8, items: 8}, *trials, *duration)
	sim := best(spec{transport: "sim", cores: 1, workers: 8, items: 8}, *trials, *duration)
	rep.Results = []runResult{piped, sim}
	rep.Gate = gate{
		Bench5OpsPerSec: bench5Baseline(*baselinePath),
		OpsPerSec:       piped.OpsPerSec,
		SimOpsPerSec:    sim.OpsPerSec,
	}
	rep.Gate.Speedup = rep.Gate.OpsPerSec / rep.Gate.Bench5OpsPerSec
	if piped.OpsPerSec > 0 {
		rep.Gate.SimOverPiped = sim.OpsPerSec / piped.OpsPerSec
	}
	rep.Gate.Pass = rep.Gate.Speedup >= 3
	fmt.Fprintf(os.Stderr, "gate: %.0f ops/s vs BENCH_5 %.0f = %.2fx (>= 3x: %v); sim/pipelined = %.2fx\n",
		rep.Gate.OpsPerSec, rep.Gate.Bench5OpsPerSec, rep.Gate.Speedup, rep.Gate.Pass, rep.Gate.SimOverPiped)
	if !rep.Gate.Pass {
		fmt.Fprintf(os.Stderr, "benchnet: WARNING: speedup %.2fx below the 3x gate\n", rep.Gate.Speedup)
	}

	// Scaling: proportional offered load per requested core.
	rep.Monotone = true
	for _, cores := range []int{1, 2, 4} {
		r := best(spec{transport: "tcp-pipelined", cores: cores, workers: 8 * cores, items: 8 * cores}, *trials, *duration)
		if n := len(rep.Scaling); n > 0 && r.OpsPerSec < rep.Scaling[n-1].OpsPerSec {
			rep.Monotone = false
		}
		rep.Scaling = append(rep.Scaling, r)
	}
	if !rep.Monotone {
		fmt.Fprintln(os.Stderr, "benchnet: WARNING: scaling curve is not monotone non-decreasing")
	}

	// Churn: crash/recovery with the one-copy history checker as the judge.
	rep.Churn = best(spec{transport: "tcp-pipelined", cores: 1, workers: 8, items: 8, churn: *churn}, 1, maxDuration(*duration, 5*time.Second))

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchnet:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchnet:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchnet:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchnet: wrote %s\n", *out)
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
