// Command benchshard measures the horizontally sharded data plane — the
// placement-driven keyspace split, the multi-coterie daemons, and the smart
// client's affinity routing and hedged reads — and writes BENCH_7.json.
// Three sections, each with its own acceptance gate:
//
//   - million: a deterministic sweep of a 1,000,000-key keyspace across 4
//     daemons (32 shards, rf=2) with stride-sampled one-copy history
//     checking. Gates: every key touched (distinct_keys >= keyspace) and
//     zero one-copy violations.
//   - shardscale: the same node count configured as one coterie over all
//     4 nodes (shards=1, rf=4) versus four 2-replica coteries (shards=4,
//     rf=2). Sharding narrows quorums and multiplies independent
//     coordinators, so throughput must scale >= 1.8x.
//   - hedging: one daemon serves reads 10ms slow; the 95%-read workload
//     runs with hedged reads off, then on. The hedge must cut read p99 by
//     >= 30% (the client's p99-capped-at-8x-p50 trigger fires before the
//     slow member answers and the alternate coterie quorum wins).
//
// Every loadgen child reports the GOMAXPROCS it actually ran with; the
// report records the child's value, never the parent's request.
//
// Throughput sections run several trials and keep the best ops/sec
// (closed-loop throughput is noisy downward); the million sweep is a
// coverage run and runs once.
//
// Usage: go run ./scripts/benchshard [-duration 5s] [-trials 2]
// [-keys 1000000] [-out BENCH_7.json] [-smoke]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"time"
)

// loadgenOut is the subset of cmd/loadgen's sharded-mode JSON report that
// benchshard reads.
type loadgenOut struct {
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Ops          int     `json:"ops"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	ReadP50us    int64   `json:"read_p50_us"`
	ReadP99us    int64   `json:"read_p99_us"`
	ReadP999us   int64   `json:"read_p999_us"`
	WriteP50us   int64   `json:"write_p50_us"`
	WriteP99us   int64   `json:"write_p99_us"`
	WriteP999us  int64   `json:"write_p999_us"`
	Failures     int     `json:"failures"`
	Violations   *int    `json:"onecopy_violations"`
	DistinctKeys int     `json:"distinct_keys"`
	CheckedKeys  int     `json:"checked_keys"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	Client       *struct {
		Retries    uint64 `json:"retries"`
		Hedges     uint64 `json:"hedges"`
		HedgeWins  uint64 `json:"hedge_wins"`
		WrongShard uint64 `json:"wrong_shard"`
	} `json:"client"`
}

type spec struct {
	nodes, shards, rf int
	keyspace, workers int
	readFrac          float64
	sweep, hedge      bool
	slowNode          int
	slowRead          time.Duration
	checkStride       int
	duration          time.Duration
}

func (s spec) args() []string {
	args := []string{"run", "./cmd/loadgen",
		"-net", "tcp", "-batch",
		"-nodes", strconv.Itoa(s.nodes),
		"-shards", strconv.Itoa(s.shards),
		"-rf", strconv.Itoa(s.rf),
		"-keyspace", strconv.Itoa(s.keyspace),
		"-workers", strconv.Itoa(s.workers),
		"-read-frac", fmt.Sprintf("%g", s.readFrac),
		"-item-size", "32",
		"-duration", s.duration.String(),
		"-check-stride", strconv.Itoa(s.checkStride),
		"-hedge=" + strconv.FormatBool(s.hedge),
	}
	if s.sweep {
		args = append(args, "-sweep")
	}
	if s.slowRead > 0 {
		args = append(args, "-slow-node", strconv.Itoa(s.slowNode), "-slow-read", s.slowRead.String())
	}
	return args
}

func runOnce(s spec) (loadgenOut, error) {
	cmd := exec.Command("go", s.args()...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return loadgenOut{}, fmt.Errorf("loadgen (shards=%d rf=%d keys=%d): %w", s.shards, s.rf, s.keyspace, err)
	}
	var out loadgenOut
	if err := json.Unmarshal(outBytes, &out); err != nil {
		return loadgenOut{}, fmt.Errorf("parsing loadgen output: %w", err)
	}
	if out.Violations != nil && *out.Violations > 0 {
		return loadgenOut{}, fmt.Errorf("loadgen (shards=%d rf=%d) reported %d one-copy violations", s.shards, s.rf, *out.Violations)
	}
	return out, nil
}

// best runs spec trials times and keeps the highest-throughput result.
func best(s spec, trials int, label string) loadgenOut {
	var b loadgenOut
	for t := 0; t < trials; t++ {
		r, err := runOnce(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchshard:", err)
			os.Exit(1)
		}
		if r.OpsPerSec > b.OpsPerSec {
			b = r
		}
	}
	fmt.Fprintf(os.Stderr, "%-12s shards=%-2d rf=%d procs=%d best %8.0f ops/s  read p50/p99/p999 %d/%d/%dus\n",
		label, s.shards, s.rf, b.GOMAXPROCS, b.OpsPerSec, b.ReadP50us, b.ReadP99us, b.ReadP999us)
	return b
}

type sectionResult struct {
	Shards       int     `json:"shards"`
	RF           int     `json:"rf"`
	Nodes        int     `json:"nodes"`
	Keyspace     int     `json:"keyspace"`
	Workers      int     `json:"workers"`
	GOMAXPROCS   int     `json:"gomaxprocs"` // child-reported, not requested
	Hedge        bool    `json:"hedge"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	Ops          int     `json:"ops"`
	ReadP50us    int64   `json:"read_p50_us"`
	ReadP99us    int64   `json:"read_p99_us"`
	ReadP999us   int64   `json:"read_p999_us"`
	WriteP99us   int64   `json:"write_p99_us"`
	Failures     int     `json:"failures"`
	DistinctKeys int     `json:"distinct_keys,omitempty"`
	CheckedKeys  int     `json:"checked_keys,omitempty"`
	ElapsedSec   float64 `json:"elapsed_sec,omitempty"`
	Hedges       uint64  `json:"hedges,omitempty"`
	HedgeWins    uint64  `json:"hedge_wins,omitempty"`
}

func toResult(s spec, o loadgenOut) sectionResult {
	r := sectionResult{
		Shards: s.shards, RF: s.rf, Nodes: s.nodes, Keyspace: s.keyspace,
		Workers: s.workers, GOMAXPROCS: o.GOMAXPROCS, Hedge: s.hedge,
		OpsPerSec: o.OpsPerSec, Ops: o.Ops,
		ReadP50us: o.ReadP50us, ReadP99us: o.ReadP99us, ReadP999us: o.ReadP999us,
		WriteP99us: o.WriteP99us, Failures: o.Failures,
		DistinctKeys: o.DistinctKeys, CheckedKeys: o.CheckedKeys, ElapsedSec: o.ElapsedSec,
	}
	if o.Client != nil {
		r.Hedges, r.HedgeWins = o.Client.Hedges, o.Client.HedgeWins
	}
	return r
}

type report struct {
	Benchmark string `json:"benchmark"`
	NumCPU    int    `json:"num_cpu"`
	Trials    int    `json:"trials"`
	Duration  string `json:"duration_per_trial"`

	Million     sectionResult `json:"million"`
	MillionPass bool          `json:"million_pass"` // full coverage, zero violations

	ShardScale     []sectionResult `json:"shardscale"` // [unsharded, sharded]
	ShardSpeedup   float64         `json:"shard_speedup"`
	ShardScalePass bool            `json:"shardscale_pass"` // >= 1.8x

	Hedging     []sectionResult `json:"hedging"` // [hedge off, hedge on]
	HedgeP99Cut float64         `json:"hedge_p99_cut"`
	HedgingPass bool            `json:"hedging_pass"` // >= 30% read p99 cut

	Pass bool   `json:"pass"`
	Note string `json:"note"`
}

func main() {
	duration := flag.Duration("duration", 5*time.Second, "measured duration per throughput trial")
	trials := flag.Int("trials", 2, "trials per throughput configuration (best kept)")
	keys := flag.Int("keys", 1_000_000, "keyspace for the million-key sweep section")
	out := flag.String("out", "BENCH_7.json", "report path")
	smoke := flag.Bool("smoke", false, "tiny CI run: small keyspace, one trial, coverage+hedging gates only, no report file")
	flag.Parse()

	if *smoke {
		*keys = 2000
		*trials = 1
		*duration = 2 * time.Second
	}

	rep := report{
		Benchmark: "BENCH_7 sharded data plane: placement, smart client, hedged reads",
		NumCPU:    runtime.NumCPU(),
		Trials:    *trials,
		Duration:  duration.String(),
		Note: "million: full-coverage Zipfian sweep with stride-sampled one-copy checking. " +
			"shardscale: 4 nodes as one rf=4 coterie vs four rf=2 coteries, gate >= 1.8x. " +
			"hedging: daemon 0 reads 10ms slow, 95% reads; hedged reads must cut read p99 >= 30%. " +
			"gomaxprocs fields are child-reported.",
	}

	// Section 1: the million-key sweep. One trial — the gate is coverage
	// and safety, not speed.
	fmt.Fprintf(os.Stderr, "benchshard: million-key sweep (%d keys)...\n", *keys)
	mSpec := spec{nodes: 4, shards: 32, rf: 2, keyspace: *keys, workers: 8,
		readFrac: 0.5, sweep: true, checkStride: 64, duration: *duration}
	mOut, err := runOnce(mSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchshard:", err)
		os.Exit(1)
	}
	rep.Million = toResult(mSpec, mOut)
	rep.MillionPass = mOut.DistinctKeys >= *keys // runOnce fails on violations
	fmt.Fprintf(os.Stderr, "benchshard: million: %d distinct keys, %d checked, %.0f ops/s, %.0fs\n",
		mOut.DistinctKeys, mOut.CheckedKeys, mOut.OpsPerSec, mOut.ElapsedSec)

	// Section 2: shard scaling on identical hardware. Skipped in smoke
	// mode: the 1.8x separation needs a measured run, not a 2s spin-up.
	rep.ShardScalePass = true
	if !*smoke {
		unsharded := spec{nodes: 4, shards: 1, rf: 4, keyspace: 10000, workers: 8,
			readFrac: 0.5, checkStride: 1, duration: *duration}
		sharded := unsharded
		sharded.shards, sharded.rf = 4, 2
		u := best(unsharded, *trials, "unsharded")
		s := best(sharded, *trials, "sharded")
		rep.ShardScale = []sectionResult{toResult(unsharded, u), toResult(sharded, s)}
		if u.OpsPerSec > 0 {
			rep.ShardSpeedup = s.OpsPerSec / u.OpsPerSec
		}
		rep.ShardScalePass = rep.ShardSpeedup >= 1.8
	}

	// Section 3: hedged reads against a degraded member.
	hOff := spec{nodes: 4, shards: 8, rf: 2, keyspace: 5000, workers: 6,
		readFrac: 0.95, slowNode: 0, slowRead: 10 * time.Millisecond,
		checkStride: 1, duration: *duration}
	hOn := hOff
	hOn.hedge = true
	off := best(hOff, *trials, "hedge-off")
	on := best(hOn, *trials, "hedge-on")
	rep.Hedging = []sectionResult{toResult(hOff, off), toResult(hOn, on)}
	if off.ReadP99us > 0 {
		rep.HedgeP99Cut = 1 - float64(on.ReadP99us)/float64(off.ReadP99us)
	}
	rep.HedgingPass = rep.HedgeP99Cut >= 0.30
	fmt.Fprintf(os.Stderr, "benchshard: hedging: read p99 %dus -> %dus (%.1f%% cut)\n",
		off.ReadP99us, on.ReadP99us, 100*rep.HedgeP99Cut)

	rep.Pass = rep.MillionPass && rep.ShardScalePass && rep.HedgingPass
	if *smoke {
		if !rep.Pass {
			fmt.Fprintf(os.Stderr, "benchshard: SMOKE FAIL (million=%v hedging=%v)\n", rep.MillionPass, rep.HedgingPass)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchshard: smoke pass")
		return
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchshard:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchshard:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchshard: wrote %s (pass=%v: million=%v shardscale=%v [%.2fx] hedging=%v [%.1f%%])\n",
		*out, rep.Pass, rep.MillionPass, rep.ShardScalePass, rep.ShardSpeedup, rep.HedgingPass, 100*rep.HedgeP99Cut)
	if !rep.Pass {
		os.Exit(1)
	}
}
