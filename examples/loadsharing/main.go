// Loadsharing: the structured-coterie selling point the epoch mechanism
// preserves. Requests from different coordinators are served by different
// quorums (the paper's quorum function takes the node name), so work
// spreads across the cluster instead of hammering a primary — and with far
// fewer messages per operation than majority voting on the same cluster.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"coterie"
)

func run(rule coterie.Rule, label string) {
	ctx := context.Background()
	cluster, err := coterie.NewCluster(25, "item", nil, coterie.Options{Rule: rule})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	cluster.Net.ResetStats()
	const opsPerNode = 8
	for i := 0; i < opsPerNode; i++ {
		for id := coterie.NodeID(0); id < 25; id++ {
			if _, err := cluster.Coordinator(id).Write(ctx, coterie.Update{Offset: int(id), Data: []byte{byte(i)}}); err != nil {
				log.Fatalf("%s: write from %v: %v", label, id, err)
			}
			// Brief pause so asynchronous propagation keeps up; the
			// message counts then reflect steady state (quorum traffic
			// plus catch-up propagation) rather than a backlog storm.
			time.Sleep(2 * time.Millisecond)
		}
	}
	// Let the final stale replicas converge before sampling counters.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		stale := false
		for _, id := range cluster.Members.IDs() {
			if cluster.Replica(id).State().Stale {
				stale = true
				break
			}
		}
		if !stale {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	stats := cluster.Net.Stats()
	load := cluster.Net.Load()

	var counts []int64
	var min, max, total int64
	min = 1 << 62
	ids := cluster.Members.IDs()
	for _, id := range ids {
		n := load[id]
		counts = append(counts, n)
		total += n
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
	writes := int64(25 * opsPerNode)
	fmt.Printf("%-10s msgs/write=%.1f  served min/median/max per node = %d/%d/%d\n",
		label, float64(stats.Messages)/float64(writes), min, counts[len(counts)/2], max)
}

func main() {
	log.SetFlags(0)
	fmt.Println("200 writes on a 25-node cluster, one coordinator per node")
	fmt.Println("(message counts include asynchronous catch-up propagation):")
	fmt.Println()
	run(coterie.GridRule(), "grid")         // write quorum 2*sqrt(25)-1 = 9
	run(coterie.MajorityRule(), "majority") // write quorum 13
	run(coterie.HierarchicalRule(), "hqc")  // quorum ~ 25^0.63 = 8
	run(coterie.WheelRule(), "wheel")       // quorum 2, but every one hits the hub
}
