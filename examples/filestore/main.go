// Filestore: the paper's motivating scenario — a replicated file updated
// with partial writes. Multiple clients patch disjoint regions through
// different coordinators; a replica that misses a write is marked stale
// with a desired version number and brought current asynchronously by the
// propagation protocol, never blocking the writers.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"coterie"
)

const fileSize = 64

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	initial := make([]byte, fileSize)
	for i := range initial {
		initial[i] = '.'
	}
	cluster, err := coterie.NewCluster(4, "file", initial, coterie.Options{
		Replica: coterie.ReplicaConfig{PropagationRetry: 10 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Four clients patch their own 16-byte regions, each through its local
	// coordinator. On the 2x2 grid every write quorum is 3 of 4 nodes, so
	// each write leaves one replica behind — marked stale, then repaired by
	// propagation.
	patches := []struct {
		node coterie.NodeID
		off  int
		text string
	}{
		{0, 0, "alpha section"},
		{1, 16, "beta section"},
		{2, 32, "gamma section"},
		{3, 48, "delta section"},
	}
	for _, p := range patches {
		version, err := cluster.Coordinator(p.node).Write(ctx, coterie.Update{Offset: p.off, Data: []byte(p.text)})
		if err != nil {
			log.Fatalf("patch from %v: %v", p.node, err)
		}
		fmt.Printf("%v patched [%2d:%2d) -> version %d\n", p.node, p.off, p.off+len(p.text), version)
	}

	// A quorum read sees every patch even though no single write touched
	// all replicas.
	value, version, err := cluster.Coordinator(0).Read(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfile at version %d:\n%q\n", version, value)

	// Wait for asynchronous propagation to bring every *stale-marked*
	// replica current. A replica that simply missed a write's quorum (and
	// was never marked stale) may lawfully lag behind, non-stale at an
	// older version — the protocol repairs it the next time a write's
	// quorum touches it, and quorum intersection keeps every read correct
	// meanwhile.
	waitNoStale(cluster, 5*time.Second)
	fmt.Println("\nreplica states after propagation:")
	report(cluster, version)

	// Demonstrate lazy repair: a lagging replica catches up as soon as a
	// later write's quorum includes it (it responds with an old version,
	// gets marked stale, and propagation fixes it). Since every write
	// quorum here is 3 of 4, *some* replica always trails the latest
	// write — but laggards rotate rather than starve. Find the current
	// laggard and run writes until it has moved forward.
	laggard, lagVersion := slowestReplica(cluster)
	for round := 0; round < 16; round++ {
		if _, v := slowestReplica(cluster); v > lagVersion {
			break
		}
		node := coterie.NodeID(round % 4)
		if _, err := cluster.Coordinator(node).Write(ctx, coterie.Update{Offset: 63, Data: []byte{'!'}}); err != nil {
			log.Fatal(err)
		}
		waitNoStale(cluster, 5*time.Second)
	}
	_, version, err = cluster.Coordinator(1).Read(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplica states after more writes (old laggard %v moved past version %d):\n", laggard, lagVersion)
	report(cluster, version)
}

// slowestReplica returns the replica with the lowest version.
func slowestReplica(cluster *coterie.Cluster) (coterie.NodeID, uint64) {
	var slow coterie.NodeID
	min := ^uint64(0)
	for id := coterie.NodeID(0); id < 4; id++ {
		if st := cluster.Replica(id).State(); st.Version < min {
			min = st.Version
			slow = id
		}
	}
	return slow, min
}

// waitNoStale blocks until no replica carries the stale flag (or timeout).
func waitNoStale(cluster *coterie.Cluster, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		any := false
		for id := coterie.NodeID(0); id < 4; id++ {
			if cluster.Replica(id).State().Stale {
				any = true
			}
		}
		if !any {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func report(cluster *coterie.Cluster, latest uint64) {
	for id := coterie.NodeID(0); id < 4; id++ {
		st := cluster.Replica(id).State()
		v, _ := cluster.Replica(id).Value()
		note := ""
		if !st.Stale && st.Version < latest {
			note = "  (lagging non-stale: repaired lazily by a future quorum)"
		}
		fmt.Printf("  %v: version %d stale=%v bytes=%q%s\n", id, st.Version, st.Stale, v[:13], note)
	}
}
