// Quickstart: a nine-node replicated data item under the dynamic grid
// protocol — write it, read it, kill a third of the cluster, let the epoch
// adapt, and keep writing.
package main

import (
	"context"
	"fmt"
	"log"

	"coterie"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// Nine replicas arranged in a 3x3 logical grid: reads need 3 nodes,
	// writes 5.
	cluster, err := coterie.NewCluster(9, "greeting", nil, coterie.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Write through the coordinator co-located with node 0.
	version, err := cluster.Coordinator(0).Write(ctx, coterie.Update{Data: []byte("hello, replicas")})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("write committed at version %d\n", version)

	// Read from a different node: the read quorum intersects the write
	// quorum, so it sees the latest version.
	value, version, err := cluster.Coordinator(7).Read(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %q at version %d\n", value, version)

	// Kill an entire grid column. The static grid protocol would now be
	// blocked forever; watch the dynamic protocol recover.
	for _, id := range []coterie.NodeID{0, 3} {
		cluster.Crash(id)
	}
	fmt.Println("crashed nodes n0 and n3")

	// Epoch checking notices the failures and re-forms the epoch from the
	// survivors (they still hold a write quorum of the 9-grid).
	res, err := cluster.CheckEpoch(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch %d installed: %v\n", res.EpochNum, res.Epoch)

	// The item stays writable inside the new, smaller epoch.
	version, err = cluster.Coordinator(5).Write(ctx, coterie.Update{Offset: 7, Data: []byte("survivors")})
	if err != nil {
		log.Fatal(err)
	}
	value, _, err = cluster.Coordinator(8).Read(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after failover: %q at version %d\n", value, version)
}
