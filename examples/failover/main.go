// Failover: the static and dynamic grid protocols side by side through the
// same failure sequence. The static protocol dies the moment a grid column
// is gone and stays dead no matter how many nodes remain; the dynamic
// protocol keeps adapting its epoch and serves writes down to three nodes.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"coterie"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	dynamic, err := coterie.NewCluster(9, "item", nil, coterie.Options{
		CallTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dynamic.Close()

	static, err := coterie.NewStaticCluster(9, "item", nil, coterie.StaticOptions{
		CallTimeout: 500 * time.Millisecond,
	}, coterie.ReplicaConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer static.Close()

	// Nodes fail one by one; after each failure the dynamic cluster runs
	// an epoch check. Writes are attempted on both from a surviving node.
	victims := []coterie.NodeID{0, 3, 1, 4, 2, 6}
	survivor := coterie.NodeID(8)

	fmt.Println("failures   static grid   dynamic grid   dynamic epoch")
	status := func(err error) string {
		switch {
		case err == nil:
			return "write OK"
		case errors.Is(err, coterie.ErrUnavailable), errors.Is(err, coterie.ErrStaticUnavailable):
			return "UNAVAILABLE"
		default:
			return "error: " + err.Error()
		}
	}
	report := func(n int) {
		_, dErr := dynamic.Coordinator(survivor).Write(ctx, coterie.Update{Offset: n, Data: []byte{'x'}})
		_, sErr := static.Coordinator(survivor).Write(ctx, []byte("x"))
		epoch := dynamic.Replica(survivor).State().Epoch
		fmt.Printf("%-10d %-13s %-14s %v\n", n, status(sErr), status(dErr), epoch)
	}

	report(0)
	for i, v := range victims {
		dynamic.Crash(v)
		static.Crash(v)
		if _, err := dynamic.CheckEpoch(ctx); err != nil {
			fmt.Printf("           (epoch check after crashing %v: %v)\n", v, err)
		}
		report(i + 1)
	}

	// Repairs flow back in the same way: restart everything and watch the
	// epoch grow back to the full set.
	for _, v := range victims {
		dynamic.Restart(v)
		static.Restart(v)
	}
	if _, err := dynamic.CheckEpoch(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall nodes repaired")
	report(len(victims) + 1)
}
