// Groups: amortized epoch management. When several data items are
// replicated on the same set of nodes, one epoch-checking sweep polls the
// whole group in a single round instead of once per item — the paper's
// Section 2 argument for decoupling epoch management from reads and
// writes. This example replicates eight items on nine nodes, crashes a
// node, and compares the message cost of a grouped sweep against
// item-by-item checks.
package main

import (
	"context"
	"fmt"
	"log"

	"coterie"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	items := []string{"users", "orders", "inventory", "sessions", "audit", "quotas", "billing", "metrics"}
	group, err := coterie.NewGroup(9, items, nil, coterie.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer group.Close()

	// Independent writes per item.
	for i, item := range items {
		co := group.Coordinator(item, 0)
		if _, err := co.Write(ctx, coterie.Update{Data: []byte(fmt.Sprintf("%s-v1-%d", item, i))}); err != nil {
			log.Fatalf("write %s: %v", item, err)
		}
	}

	// Quiet cluster: one grouped check is pure polling.
	group.Net.ResetStats()
	if _, err := group.CheckEpochs(ctx, 0); err != nil {
		log.Fatal(err)
	}
	grouped := group.Net.Stats().Messages

	group.Net.ResetStats()
	for _, item := range items {
		if _, err := group.Coordinator(item, 0).CheckEpoch(ctx); err != nil {
			log.Fatal(err)
		}
	}
	perItem := group.Net.Stats().Messages

	fmt.Printf("quiet cluster, %d items on 9 nodes:\n", len(items))
	fmt.Printf("  grouped epoch sweep: %3d messages (one poll round for everything)\n", grouped)
	fmt.Printf("  per-item checks:     %3d messages (%dx the polling)\n\n", perItem, perItem/grouped)

	// Now a failure: the grouped sweep adapts every item's epoch.
	group.Crash(4)
	results, err := group.CheckEpochs(ctx, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after crashing n4, one grouped sweep adapted every item:")
	for _, item := range items {
		res := results[item]
		fmt.Printf("  %-10s epoch %d: %v\n", item, res.EpochNum, res.Epoch)
	}

	// All items remain writable.
	for _, item := range items {
		if _, err := group.Coordinator(item, 0).Write(ctx, coterie.Update{Offset: 20, Data: []byte("v2")}); err != nil {
			log.Fatalf("post-failure write %s: %v", item, err)
		}
	}
	fmt.Println("\nall items writable inside their new epochs")
}
