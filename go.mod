module coterie

go 1.23
